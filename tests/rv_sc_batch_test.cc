// Behavioral tests for the RV and SC baselines and the EcaBatch extension.
#include <gtest/gtest.h>

#include "core/rv.h"
#include "core/sc.h"
#include "test_util.h"
#include "workload/generator.h"

namespace wvm {
namespace {

struct ChainFixture {
  Workload workload;
  std::vector<Update> updates;

  static ChainFixture Make(uint64_t seed, int64_t k) {
    Random rng(seed);
    Result<Workload> w = MakeExample6Workload({12, 2}, &rng);
    EXPECT_TRUE(w.ok());
    Result<std::vector<Update>> updates = MakeMixedUpdates(*w, k, 0.3, &rng);
    EXPECT_TRUE(updates.ok());
    return ChainFixture{std::move(*w), std::move(*updates)};
  }
};

TEST(RvTest, PeriodOneRecomputesEveryUpdate) {
  ChainFixture f = ChainFixture::Make(1, 6);
  std::unique_ptr<Simulation> sim = MustMakeSim(
      f.workload.initial, f.workload.view, Algorithm::kRv, {}, /*period=*/1);
  sim->SetUpdateScript(f.updates);
  BestCasePolicy policy;
  ASSERT_TRUE(RunToQuiescence(sim.get(), &policy).ok());
  EXPECT_EQ(sim->meter().query_messages(), 6);
  Result<Relation> expected = sim->SourceViewNow();
  ASSERT_TRUE(expected.ok());
  EXPECT_EQ(sim->warehouse_view(), *expected);
}

TEST(RvTest, PeriodSRecomputesEveryS) {
  ChainFixture f = ChainFixture::Make(1, 6);
  std::unique_ptr<Simulation> sim = MustMakeSim(
      f.workload.initial, f.workload.view, Algorithm::kRv, {}, /*period=*/3);
  sim->SetUpdateScript(f.updates);
  BestCasePolicy policy;
  ASSERT_TRUE(RunToQuiescence(sim.get(), &policy).ok());
  // M_RV = 2*ceil(k/s) = 4 messages for k=6, s=3.
  EXPECT_EQ(sim->meter().messages(), 4);
  Result<Relation> expected = sim->SourceViewNow();
  ASSERT_TRUE(expected.ok());
  EXPECT_EQ(sim->warehouse_view(), *expected);
}

TEST(RvTest, StaleWhenPeriodDoesNotDivideK) {
  // k=5, s=3: only one recomputation after U3; the view lags behind unless
  // U4/U5 happen not to change it.
  ChainFixture f = ChainFixture::Make(2, 5);
  std::unique_ptr<Simulation> sim = MustMakeSim(
      f.workload.initial, f.workload.view, Algorithm::kRv, {}, /*period=*/3);
  sim->SetUpdateScript(f.updates);
  BestCasePolicy policy;
  ASSERT_TRUE(RunToQuiescence(sim.get(), &policy).ok());
  EXPECT_EQ(sim->meter().query_messages(), 1);
  // Consistency still holds: the installed state was a real source state.
  ConsistencyReport r = CheckConsistency(sim->state_log());
  EXPECT_TRUE(r.consistent) << r.ToString();
}

TEST(RvTest, ReplacesRatherThanMerges) {
  ChainFixture f = ChainFixture::Make(3, 4);
  std::unique_ptr<Simulation> sim = MustMakeSim(
      f.workload.initial, f.workload.view, Algorithm::kRv, {}, /*period=*/2);
  sim->SetUpdateScript(f.updates);
  WorstCasePolicy policy;  // recompute answers pile up; each overwrites
  ASSERT_TRUE(RunToQuiescence(sim.get(), &policy).ok());
  Result<Relation> expected = sim->SourceViewNow();
  ASSERT_TRUE(expected.ok());
  EXPECT_EQ(sim->warehouse_view(), *expected);
}

TEST(ScTest, NeverTalksToTheSource) {
  ChainFixture f = ChainFixture::Make(4, 8);
  std::unique_ptr<Simulation> sim =
      MustMakeSim(f.workload.initial, f.workload.view, Algorithm::kSc);
  sim->SetUpdateScript(f.updates);
  RandomPolicy policy(4);
  ASSERT_TRUE(RunToQuiescence(sim.get(), &policy).ok());
  EXPECT_EQ(sim->meter().messages(), 0);
  EXPECT_EQ(sim->meter().bytes_transferred(), 0);
  Result<Relation> expected = sim->SourceViewNow();
  ASSERT_TRUE(expected.ok());
  EXPECT_EQ(sim->warehouse_view(), *expected);
}

TEST(ScTest, ReplicasMirrorSourceRelations) {
  ChainFixture f = ChainFixture::Make(5, 6);
  auto maintainer = std::make_unique<StoreCopies>(f.workload.view);
  StoreCopies* sc = maintainer.get();
  Result<std::unique_ptr<Simulation>> sim =
      Simulation::Create(f.workload.initial, f.workload.view,
                         std::move(maintainer), SimulationOptions());
  ASSERT_TRUE(sim.ok());
  (*sim)->SetUpdateScript(f.updates);
  BestCasePolicy policy;
  ASSERT_TRUE(RunToQuiescence(sim->get(), &policy).ok());
  for (const std::string& name : sc->copies().Names()) {
    EXPECT_EQ(*sc->copies().Get(name).value(),
              *(*sim)->source_catalog().Get(name).value())
        << name;
  }
  EXPECT_EQ(sc->ReplicaTupleCount(), 3 * 12 + 6 - 2 * [&] {
    int64_t deletes = 0;
    for (const Update& u : f.updates) {
      if (u.kind == UpdateKind::kDelete) {
        ++deletes;
      }
    }
    return deletes;
  }());
}

TEST(ScTest, StorageOverheadReported) {
  ChainFixture f = ChainFixture::Make(6, 0);
  auto maintainer = std::make_unique<StoreCopies>(f.workload.view);
  StoreCopies* sc = maintainer.get();
  Result<std::unique_ptr<Simulation>> sim =
      Simulation::Create(f.workload.initial, f.workload.view,
                         std::move(maintainer), SimulationOptions());
  ASSERT_TRUE(sim.ok());
  EXPECT_EQ(sc->ReplicaTupleCount(), 36);  // 3 relations x C=12
}

TEST(EcaBatchTest, OneQueryPerBatch) {
  ChainFixture f = ChainFixture::Make(7, 9);
  SimulationOptions options;
  options.batch_size = 3;
  std::unique_ptr<Simulation> sim = MustMakeSim(
      f.workload.initial, f.workload.view, Algorithm::kEcaBatch, options);
  sim->SetUpdateScript(f.updates);
  BestCasePolicy policy;
  ASSERT_TRUE(RunToQuiescence(sim.get(), &policy).ok());
  EXPECT_EQ(sim->meter().notifications(), 3);
  EXPECT_EQ(sim->meter().query_messages(), 3);  // vs 9 for plain ECA
  Result<Relation> expected = sim->SourceViewNow();
  ASSERT_TRUE(expected.ok());
  EXPECT_EQ(sim->warehouse_view(), *expected);
}

TEST(EcaBatchTest, CorrectUnderAdversarialInterleaving) {
  ChainFixture f = ChainFixture::Make(8, 9);
  SimulationOptions options;
  options.batch_size = 3;
  std::unique_ptr<Simulation> sim = MustMakeSim(
      f.workload.initial, f.workload.view, Algorithm::kEcaBatch, options);
  sim->SetUpdateScript(f.updates);
  WorstCasePolicy policy;
  ASSERT_TRUE(RunToQuiescence(sim.get(), &policy).ok());
  ConsistencyReport r = CheckConsistency(sim->state_log());
  EXPECT_TRUE(r.strongly_consistent) << r.ToString();
}

TEST(EcaBatchTest, SequentialDefaultHandlesBatchesForPlainEca) {
  // Plain ECA receiving batched notifications processes them one by one
  // within the event and stays correct.
  ChainFixture f = ChainFixture::Make(9, 8);
  SimulationOptions options;
  options.batch_size = 4;
  std::unique_ptr<Simulation> sim = MustMakeSim(
      f.workload.initial, f.workload.view, Algorithm::kEca, options);
  sim->SetUpdateScript(f.updates);
  RandomPolicy policy(9);
  ASSERT_TRUE(RunToQuiescence(sim.get(), &policy).ok());
  ConsistencyReport r = CheckConsistency(sim->state_log());
  EXPECT_TRUE(r.strongly_consistent) << r.ToString();
  // Per-update queries: 8 of them even though only 2 notifications.
  EXPECT_EQ(sim->meter().query_messages(), 8);
  EXPECT_EQ(sim->meter().notifications(), 2);
}

}  // namespace
}  // namespace wvm
