#include "storage/stored_relation.h"

#include <gtest/gtest.h>

namespace wvm {
namespace {

BaseRelationDef R2Def() { return {"r2", Schema::Ints({"X", "Y"})}; }

StoredRelation MakeLoaded(int rows, int k, bool clustered_x) {
  StoredRelation sr(R2Def(), k);
  if (clustered_x) {
    EXPECT_TRUE(sr.AddIndex("X", /*clustered=*/true).ok());
  }
  for (int t = 0; t < rows; ++t) {
    // X has 4 occurrences per value; Y distinct.
    EXPECT_TRUE(sr.Insert(Tuple::Ints({t % (rows / 4), t})).ok());
  }
  return sr;
}

TEST(StoredRelationTest, BlockCountIsCeilRowsOverK) {
  StoredRelation sr(R2Def(), 20);
  EXPECT_EQ(sr.NumBlocks(), 0);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(sr.Insert(Tuple::Ints({i, i})).ok());
  }
  EXPECT_EQ(sr.NumBlocks(), 5);
  ASSERT_TRUE(sr.Insert(Tuple::Ints({1, 101})).ok());
  EXPECT_EQ(sr.NumBlocks(), 6);  // 101 rows -> ceil(101/20)
}

TEST(StoredRelationTest, FullScanChargesAllBlocks) {
  StoredRelation sr = MakeLoaded(100, 20, /*clustered_x=*/false);
  IOStats io;
  const std::vector<Tuple>& rows = sr.FullScan(&io);
  EXPECT_EQ(rows.size(), 100u);
  EXPECT_EQ(io.page_reads, 5);
  EXPECT_EQ(io.full_scans, 1);
}

TEST(StoredRelationTest, ClusteredIndexKeepsRowsSorted) {
  StoredRelation sr(R2Def(), 20);
  ASSERT_TRUE(sr.AddIndex("X", /*clustered=*/true).ok());
  ASSERT_TRUE(sr.Insert(Tuple::Ints({5, 0})).ok());
  ASSERT_TRUE(sr.Insert(Tuple::Ints({1, 1})).ok());
  ASSERT_TRUE(sr.Insert(Tuple::Ints({3, 2})).ok());
  EXPECT_EQ(sr.rows()[0].value(0).AsInt(), 1);
  EXPECT_EQ(sr.rows()[1].value(0).AsInt(), 3);
  EXPECT_EQ(sr.rows()[2].value(0).AsInt(), 5);
}

TEST(StoredRelationTest, ClusteredProbeChargesDistinctBlocks) {
  // 100 rows, K=20, X = t%25 sorted: the 4 matches for one X value are
  // contiguous and 4 divides 20, so exactly one block is touched.
  StoredRelation sr = MakeLoaded(100, 20, /*clustered_x=*/true);
  IOStats io;
  Result<std::vector<Tuple>> matches =
      sr.IndexProbe("X", Value(int64_t{3}), &io);
  ASSERT_TRUE(matches.ok());
  EXPECT_EQ(matches->size(), 4u);
  EXPECT_EQ(io.page_reads, 1);
  EXPECT_EQ(io.index_probes, 1);
}

TEST(StoredRelationTest, UnsuccessfulClusteredProbeStillChargesOneRead) {
  StoredRelation sr = MakeLoaded(100, 20, /*clustered_x=*/true);
  IOStats io;
  Result<std::vector<Tuple>> matches =
      sr.IndexProbe("X", Value(int64_t{999}), &io);
  ASSERT_TRUE(matches.ok());
  EXPECT_TRUE(matches->empty());
  EXPECT_EQ(io.page_reads, 1);
}

TEST(StoredRelationTest, NonClusteredProbeChargesPerMatch) {
  // Non-clustered index on Y of a file clustered by X: matches scatter, and
  // Appendix D charges one read per matching tuple.
  StoredRelation sr(R2Def(), 20);
  ASSERT_TRUE(sr.AddIndex("X", /*clustered=*/true).ok());
  ASSERT_TRUE(sr.AddIndex("Y", /*clustered=*/false).ok());
  for (int t = 0; t < 100; ++t) {
    ASSERT_TRUE(sr.Insert(Tuple::Ints({t % 25, t % 25})).ok());
  }
  IOStats io;
  Result<std::vector<Tuple>> matches =
      sr.IndexProbe("Y", Value(int64_t{7}), &io);
  ASSERT_TRUE(matches.ok());
  EXPECT_EQ(matches->size(), 4u);
  EXPECT_EQ(io.page_reads, 4);
}

TEST(StoredRelationTest, ProbeWithoutIndexFails) {
  StoredRelation sr = MakeLoaded(20, 20, /*clustered_x=*/false);
  IOStats io;
  EXPECT_EQ(sr.IndexProbe("X", Value(int64_t{1}), &io).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(StoredRelationTest, SecondClusteredIndexRejected) {
  StoredRelation sr(R2Def(), 20);
  ASSERT_TRUE(sr.AddIndex("X", true).ok());
  EXPECT_EQ(sr.AddIndex("Y", true).code(), StatusCode::kFailedPrecondition);
  EXPECT_TRUE(sr.AddIndex("Y", false).ok());
}

TEST(StoredRelationTest, IndexOnUnknownAttributeRejected) {
  StoredRelation sr(R2Def(), 20);
  EXPECT_EQ(sr.AddIndex("Q", false).code(), StatusCode::kNotFound);
}

TEST(StoredRelationTest, FindIndexPrefersClustered) {
  StoredRelation sr(R2Def(), 20);
  ASSERT_TRUE(sr.AddIndex("X", true).ok());
  ASSERT_TRUE(sr.AddIndex("Y", false).ok());
  ASSERT_NE(sr.FindIndex("X"), nullptr);
  EXPECT_TRUE(sr.FindIndex("X")->clustered);
  ASSERT_NE(sr.FindIndex("Y"), nullptr);
  EXPECT_FALSE(sr.FindIndex("Y")->clustered);
  EXPECT_EQ(sr.FindIndex("Q"), nullptr);
}

TEST(StoredRelationTest, EstimatedMatchesPerKeyIsJoinFactor) {
  StoredRelation sr = MakeLoaded(100, 20, /*clustered_x=*/false);
  EXPECT_DOUBLE_EQ(sr.EstimatedMatchesPerKey("X"), 4.0);
  EXPECT_DOUBLE_EQ(sr.EstimatedMatchesPerKey("Y"), 1.0);
}

TEST(StoredRelationTest, DeleteRemovesOneCopy) {
  StoredRelation sr(R2Def(), 20);
  ASSERT_TRUE(sr.Insert(Tuple::Ints({1, 2})).ok());
  ASSERT_TRUE(sr.Insert(Tuple::Ints({1, 2})).ok());
  ASSERT_TRUE(sr.Delete(Tuple::Ints({1, 2})).ok());
  EXPECT_EQ(sr.NumRows(), 1u);
  ASSERT_TRUE(sr.Delete(Tuple::Ints({1, 2})).ok());
  EXPECT_EQ(sr.Delete(Tuple::Ints({1, 2})).code(),
            StatusCode::kFailedPrecondition);
}

TEST(StoredRelationTest, BlockSlicing) {
  StoredRelation sr = MakeLoaded(50, 20, /*clustered_x=*/false);
  EXPECT_EQ(sr.Block(0).size(), 20u);
  EXPECT_EQ(sr.Block(1).size(), 20u);
  EXPECT_EQ(sr.Block(2).size(), 10u);
}

TEST(StoredRelationTest, InsertArityMismatchRejected) {
  StoredRelation sr(R2Def(), 20);
  EXPECT_EQ(sr.Insert(Tuple::Ints({1})).code(),
            StatusCode::kInvalidArgument);
}

TEST(StoredRelationTest, DistinctCountsTrackInsertsAndDeletes) {
  // The join-factor statistic is maintained incrementally; it must stay
  // exact through arbitrary insert/delete sequences, including deleting
  // the last occurrence of a value (distinct count shrinks) and deleting
  // one of several (distinct count holds).
  StoredRelation sr(R2Def(), 20);
  ASSERT_TRUE(sr.Insert(Tuple::Ints({1, 10})).ok());
  ASSERT_TRUE(sr.Insert(Tuple::Ints({1, 11})).ok());
  ASSERT_TRUE(sr.Insert(Tuple::Ints({2, 12})).ok());
  ASSERT_TRUE(sr.Insert(Tuple::Ints({2, 13})).ok());
  EXPECT_DOUBLE_EQ(sr.EstimatedMatchesPerKey("X"), 2.0);  // 4 rows / 2 X
  EXPECT_DOUBLE_EQ(sr.EstimatedMatchesPerKey("Y"), 1.0);

  ASSERT_TRUE(sr.Delete(Tuple::Ints({1, 10})).ok());
  EXPECT_DOUBLE_EQ(sr.EstimatedMatchesPerKey("X"), 1.5);  // 3 rows / 2 X

  ASSERT_TRUE(sr.Delete(Tuple::Ints({1, 11})).ok());
  EXPECT_DOUBLE_EQ(sr.EstimatedMatchesPerKey("X"), 2.0);  // 2 rows / 1 X

  ASSERT_TRUE(sr.Delete(Tuple::Ints({2, 12})).ok());
  ASSERT_TRUE(sr.Delete(Tuple::Ints({2, 13})).ok());
  EXPECT_DOUBLE_EQ(sr.EstimatedMatchesPerKey("X"), 0.0);  // empty again
}

TEST(StoredRelationTest, BulkLoadMatchesRowByRowInserts) {
  std::vector<Tuple> tuples;
  for (int t = 99; t >= 0; --t) {  // reverse order exercises the sort
    tuples.push_back(Tuple::Ints({t % 25, t}));
  }
  StoredRelation bulk(R2Def(), 20);
  ASSERT_TRUE(bulk.AddIndex("X", /*clustered=*/true).ok());
  ASSERT_TRUE(bulk.BulkLoad(tuples).ok());

  StoredRelation slow(R2Def(), 20);
  ASSERT_TRUE(slow.AddIndex("X", /*clustered=*/true).ok());
  for (const Tuple& t : tuples) {
    ASSERT_TRUE(slow.Insert(t).ok());
  }

  ASSERT_EQ(bulk.NumRows(), slow.NumRows());
  // Clustered order holds (non-decreasing X); exact row order within equal
  // keys may differ between the stable sort and shifted inserts, but the
  // statistics and the blocked access costs are identical.
  for (size_t i = 1; i < bulk.rows().size(); ++i) {
    EXPECT_LE(bulk.rows()[i - 1].value(0).AsInt(),
              bulk.rows()[i].value(0).AsInt());
  }
  EXPECT_DOUBLE_EQ(bulk.EstimatedMatchesPerKey("X"),
                   slow.EstimatedMatchesPerKey("X"));
  EXPECT_DOUBLE_EQ(bulk.EstimatedMatchesPerKey("Y"),
                   slow.EstimatedMatchesPerKey("Y"));
  IOStats bulk_io;
  IOStats slow_io;
  Result<std::vector<Tuple>> bulk_matches =
      bulk.IndexProbe("X", Value(int64_t{3}), &bulk_io);
  Result<std::vector<Tuple>> slow_matches =
      slow.IndexProbe("X", Value(int64_t{3}), &slow_io);
  ASSERT_TRUE(bulk_matches.ok());
  ASSERT_TRUE(slow_matches.ok());
  EXPECT_EQ(bulk_matches->size(), slow_matches->size());
  EXPECT_EQ(bulk_io.page_reads, slow_io.page_reads);
}

TEST(StoredRelationTest, BulkLoadRejectsArityMismatchAtomically) {
  StoredRelation sr(R2Def(), 20);
  EXPECT_EQ(sr.BulkLoad({Tuple::Ints({1, 2}), Tuple::Ints({3})}).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(sr.NumRows(), 0u);  // nothing partially loaded
}

TEST(StoredRelationTest, CopiesShareRowsUntilMutation) {
  // Copy-on-write: a copied StoredRelation is a stable snapshot — later
  // mutations of the original never show through, and the statistics of
  // both sides stay in lockstep with their own rows.
  StoredRelation head = MakeLoaded(100, 20, /*clustered_x=*/true);
  StoredRelation snapshot = head;
  EXPECT_EQ(&snapshot.rows(), &head.rows());  // shared until mutated

  ASSERT_TRUE(head.Insert(Tuple::Ints({3, 1000})).ok());
  ASSERT_TRUE(head.Delete(Tuple::Ints({0, 0})).ok());
  EXPECT_NE(&snapshot.rows(), &head.rows());
  EXPECT_EQ(snapshot.NumRows(), 100u);
  EXPECT_EQ(head.NumRows(), 100u);  // one insert, one delete
  EXPECT_DOUBLE_EQ(snapshot.EstimatedMatchesPerKey("X"), 4.0);

  // A failed delete must not un-share the snapshot's storage.
  StoredRelation again = head;
  EXPECT_EQ(again.Delete(Tuple::Ints({999, 999})).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(&again.rows(), &head.rows());
}

}  // namespace
}  // namespace wvm
