// Heartbeat failure-detection edge cases: exact suspect/evict thresholds,
// a crashed replica evicted after the bounded miss count, a flapping
// replica (spuriously evicted and rejoined repeatedly under a lossy
// control channel) that stays harmless, and the all-replicas-suspect
// degenerate case in which every read is refused but the run still drains.
#include "replication/heartbeat.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "replication/replicated_simulation.h"
#include "test_util.h"
#include "workload/generator.h"

namespace wvm {
namespace {

TEST(HeartbeatMonitorTest, ThresholdsAreExact) {
  HeartbeatConfig config{2, 4, 0.0, 1};
  ASSERT_TRUE(config.Validate().ok());
  HeartbeatMonitor monitor(2, config);
  // Replica 0 goes silent; replica 1 keeps beating.
  std::vector<BeatInput> inputs = {BeatInput::kSilent, BeatInput::kBeat};

  EXPECT_TRUE(monitor.Round(inputs, nullptr).empty());  // miss 1: live
  EXPECT_EQ(monitor.health(0), ReplicaHealth::kLive);
  EXPECT_TRUE(monitor.Round(inputs, nullptr).empty());  // miss 2: suspect
  EXPECT_EQ(monitor.health(0), ReplicaHealth::kSuspect);
  EXPECT_EQ(monitor.suspicions(), 1);
  EXPECT_TRUE(monitor.Round(inputs, nullptr).empty());  // miss 3: suspect
  EXPECT_EQ(monitor.health(0), ReplicaHealth::kSuspect);
  EXPECT_EQ(monitor.suspicions(), 1);  // not re-counted
  std::vector<int> evicted = monitor.Round(inputs, nullptr);  // miss 4
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0], 0);
  EXPECT_EQ(monitor.health(0), ReplicaHealth::kEvicted);
  EXPECT_EQ(monitor.evictions(), 1);
  // Evicted replicas leave the detector: no further transitions.
  EXPECT_TRUE(monitor.Round(inputs, nullptr).empty());
  EXPECT_EQ(monitor.evictions(), 1);
  // The healthy replica never left kLive.
  EXPECT_EQ(monitor.health(1), ReplicaHealth::kLive);
  EXPECT_EQ(monitor.missed(1), 0);

  monitor.Restore(0);
  EXPECT_EQ(monitor.health(0), ReplicaHealth::kLive);
  EXPECT_EQ(monitor.missed(0), 0);
}

TEST(HeartbeatMonitorTest, RecoveredBeatResetsTheMissCounter) {
  HeartbeatConfig config{2, 4, 0.0, 1};
  HeartbeatMonitor monitor(1, config);
  std::vector<BeatInput> silent = {BeatInput::kSilent};
  std::vector<BeatInput> beat = {BeatInput::kBeat};
  ASSERT_TRUE(monitor.Round(silent, nullptr).empty());
  ASSERT_TRUE(monitor.Round(silent, nullptr).empty());
  EXPECT_EQ(monitor.health(0), ReplicaHealth::kSuspect);
  // One heard beat fully rehabilitates the replica.
  ASSERT_TRUE(monitor.Round(beat, nullptr).empty());
  EXPECT_EQ(monitor.health(0), ReplicaHealth::kLive);
  EXPECT_EQ(monitor.missed(0), 0);
}

TEST(HeartbeatMonitorTest, TotalBeatLossEventuallyEvictsEveryone) {
  HeartbeatConfig config{1, 2, 1.0, 9};  // every beat lost in transit
  HeartbeatMonitor monitor(3, config);
  CostMeter meter(-1);
  std::vector<BeatInput> inputs(3, BeatInput::kBeat);
  EXPECT_TRUE(monitor.Round(inputs, &meter).empty());
  std::vector<int> evicted = monitor.Round(inputs, &meter);
  EXPECT_EQ(evicted, (std::vector<int>{0, 1, 2}));
  // Beats were emitted (and metered) even though none was heard.
  EXPECT_EQ(meter.heartbeat_messages(), 6);
  EXPECT_EQ(monitor.beats_lost(), 6);
  EXPECT_EQ(monitor.beats_heard(), 0);
}

TEST(HeartbeatMonitorTest, ConfigValidation) {
  EXPECT_FALSE((HeartbeatConfig{0, 4, 0.0, 1}).Validate().ok());
  EXPECT_FALSE((HeartbeatConfig{3, 2, 0.0, 1}).Validate().ok());
  EXPECT_FALSE((HeartbeatConfig{2, 4, 1.5, 1}).Validate().ok());
  EXPECT_FALSE((HeartbeatConfig{2, 4, -0.1, 1}).Validate().ok());
  EXPECT_TRUE((HeartbeatConfig{2, 4, 0.5, 1}).Validate().ok());
}

struct SimFixture {
  Workload workload;
  std::unique_ptr<ReplicatedSimulation> sim;
};

SimFixture MakeSim(uint64_t seed, ReplicationOptions rep, int num_updates) {
  SimFixture f;
  Random rng(seed);
  Result<Workload> workload = MakeExample6Workload(Example6Config{30, 3}, &rng);
  EXPECT_TRUE(workload.ok()) << workload.status();
  f.workload = std::move(*workload);
  Result<std::vector<Update>> updates =
      MakeRoundRobinInserts(f.workload, num_updates, &rng);
  EXPECT_TRUE(updates.ok()) << updates.status();
  Result<std::unique_ptr<ReplicatedSimulation>> sim =
      ReplicatedSimulation::Create(f.workload.initial, f.workload.view,
                                   Algorithm::kEca, SimulationOptions(), rep);
  EXPECT_TRUE(sim.ok()) << sim.status();
  f.sim = std::move(*sim);
  f.sim->SetUpdateScript(std::move(*updates));
  return f;
}

// Drains every enabled action EXCEPT heartbeats and reads, so a test can
// place those two at exact points in the schedule.
void DrainDataPlane(ReplicatedSimulation* sim) {
  for (int guard = 0; guard < 1000000; ++guard) {
    bool stepped = false;
    for (const RepAction& action : sim->EnabledActions()) {
      if (action.kind == RepAction::Kind::kHeartbeatRound ||
          action.kind == RepAction::Kind::kClientRead) {
        continue;
      }
      ASSERT_TRUE(sim->Step(action).ok());
      stepped = true;
      break;
    }
    if (!stepped) {
      return;
    }
  }
  FAIL() << "data plane failed to drain";
}

TEST(ReplicationHeartbeatTest, CrashedReplicaEvictedAfterBoundedMisses) {
  ReplicationOptions rep;
  rep.num_replicas = 3;
  rep.heartbeat_rounds = 10;
  rep.suspect_after = 2;
  rep.evict_after = 4;
  rep.heartbeat_loss_rate = 0.0;
  SimFixture f = MakeSim(21, rep, 6);
  DrainDataPlane(f.sim.get());

  ASSERT_TRUE(f.sim->CrashReplica(2).ok());
  for (int round = 0; round < rep.evict_after; ++round) {
    EXPECT_EQ(f.sim->replica(2).membership(), ReplicaMembership::kInGroup)
        << "evicted before the bounded miss count, at round " << round;
    ASSERT_TRUE(f.sim->StepHeartbeatRound().ok());
  }
  // Exactly evict_after silent rounds: out of the group, endpoint detached.
  EXPECT_EQ(f.sim->replica(2).membership(), ReplicaMembership::kEvicted);
  EXPECT_FALSE(f.sim->sequencer().attached(2));
  EXPECT_EQ(f.sim->monitor().evictions(), 1);

  // Rejoin and drain: the group is whole and converged again.
  ASSERT_TRUE(f.sim->RejoinReplica(2).ok());
  RandomReplicatedPolicy policy(21);
  ASSERT_TRUE(RunReplicatedToQuiescence(f.sim.get(), &policy).ok());
  EXPECT_TRUE(f.sim->ConvergenceNow().converged);
}

TEST(ReplicationHeartbeatTest, FlappingReplicaEvictsAndRejoinsRepeatedly) {
  // A savagely lossy control channel: healthy replicas get spuriously
  // evicted over and over. The catch-up path must make each flap harmless
  // — the run still converges byte-identically.
  ReplicationOptions rep;
  rep.num_replicas = 3;
  rep.heartbeat_rounds = 80;
  rep.suspect_after = 1;
  rep.evict_after = 2;
  rep.heartbeat_loss_rate = 0.7;
  rep.heartbeat_seed = 33;
  rep.reads = 10;
  rep.read_policy = ReadPolicy::kBoundedStaleness;
  rep.staleness_bound = 1000;
  SimFixture f = MakeSim(33, rep, 8);
  RandomReplicatedPolicy policy(33);
  ASSERT_TRUE(RunReplicatedToQuiescence(f.sim.get(), &policy).ok());

  // Multiple spurious evictions happened and every one was healed.
  EXPECT_GE(f.sim->monitor().evictions(), 2);
  int rejoins = 0;
  for (const TraceEvent& e : f.sim->trace().events()) {
    if (e.kind == TraceEvent::Kind::kRejoin) {
      ++rejoins;
    }
  }
  EXPECT_GE(rejoins, 2);
  EXPECT_TRUE(f.sim->ConvergenceNow().converged)
      << f.sim->ConvergenceNow().ToString();
  for (int r = 0; r < f.sim->num_replicas(); ++r) {
    EXPECT_EQ(f.sim->replica(r).view(), f.sim->lead().warehouse_view()) << r;
  }
}

TEST(ReplicationHeartbeatTest, AllReplicasSuspectRefusesReadsWithoutWedging) {
  ReplicationOptions rep;
  rep.num_replicas = 3;
  rep.heartbeat_rounds = 2;
  rep.suspect_after = 2;
  rep.evict_after = 100;  // suspicion only — nobody actually leaves
  rep.heartbeat_loss_rate = 1.0;  // every beat lost: the degenerate case
  rep.reads = 2;
  SimFixture f = MakeSim(41, rep, 4);
  DrainDataPlane(f.sim.get());

  ASSERT_TRUE(f.sim->StepHeartbeatRound().ok());
  ASSERT_TRUE(f.sim->StepHeartbeatRound().ok());
  for (int r = 0; r < 3; ++r) {
    EXPECT_EQ(f.sim->monitor().health(r), ReplicaHealth::kSuspect) << r;
    // Suspects stay in the group (they keep applying the broadcast)...
    EXPECT_EQ(f.sim->replica(r).membership(), ReplicaMembership::kInGroup)
        << r;
  }
  // ...but none of them serves: both reads are refused, consuming budget.
  ASSERT_TRUE(f.sim->StepClientRead().ok());
  ASSERT_TRUE(f.sim->StepClientRead().ok());
  ASSERT_EQ(f.sim->read_log().size(), 2u);
  EXPECT_FALSE(f.sim->read_log()[0].served);
  EXPECT_FALSE(f.sim->read_log()[1].served);
  EXPECT_EQ(f.sim->router().stats().refused, 2);

  // The degenerate case cannot wedge the run: budgets are spent, the data
  // plane is drained, so the system is quiescent (and still converged).
  EXPECT_TRUE(f.sim->Quiescent());
  EXPECT_TRUE(f.sim->ConvergenceNow().converged);
}

}  // namespace
}  // namespace wvm
