// The fault-injectable transport (src/transport) and the reliable-delivery
// protocol on top of it, proved against the paper's Section 3 channel
// assumption three ways:
//
//   1. unit level — FaultyLink is a seeded, replayable fault schedule;
//      ReliableEndpoint restores exactly-once in-order delivery under every
//      combination of drop/duplicate/reorder/delay (a property sweep);
//   2. axiom level — with the protocol on, the Section 3 in-order
//      message-processing axiom holds again end to end, and a fault-free
//      transport is byte-identical to the plain FIFO channel;
//   3. system level — the Section 3.1 checker shows ECA/ECA-Key/ECA-Local/
//      RV/SC regain strong consistency across >= 50 seeded fault schedules
//      with the protocol enabled, while raw faulty links reproduce concrete
//      lost-tuple AND duplicate-tuple anomalies (Basic and ECA both break).
#include <gtest/gtest.h>

#include <map>
#include <numeric>
#include <vector>

#include "test_util.h"
#include "transport/fault_config.h"
#include "transport/faulty_link.h"
#include "transport/reliable_endpoint.h"
#include "transport/transport_channel.h"
#include "workload/generator.h"

namespace wvm {
namespace {

// ---------------------------------------------------------------------------
// Satellite: Channel<T> empty-channel preconditions are now checked fatals.

using ChannelDeathTest = ::testing::Test;

TEST(ChannelDeathTest, FrontOnEmptyChannelDies) {
  Channel<int> ch;
  EXPECT_DEATH(ch.Front(), "Front\\(\\) on an empty channel");
}

TEST(ChannelDeathTest, ReceiveOnEmptyChannelDies) {
  Channel<int> ch;
  EXPECT_DEATH(ch.Receive(), "Receive\\(\\) on an empty channel");
}

TEST(ChannelDeathTest, ConsumedChannelDiesLikeFreshOne) {
  Channel<int> ch;
  ch.Send(7);
  EXPECT_EQ(ch.Receive(), 7);
  EXPECT_DEATH(ch.Receive(), "Receive\\(\\) on an empty channel");
}

// ---------------------------------------------------------------------------
// FaultyLink: the seeded fault schedule itself.

FaultConfig RawFaults(double drop, double dup, double reorder, int delay,
                      uint64_t seed) {
  FaultConfig f;
  f.enabled = true;
  f.drop_rate = drop;
  f.duplicate_rate = dup;
  f.reorder_rate = reorder;
  f.max_delay_ticks = delay;
  f.seed = seed;
  return f;
}

// Drains a link to quiescence, ticking when only future frames remain.
std::vector<int> DrainLink(FaultyLink<int>* link) {
  std::vector<int> out;
  while (link->HasUndelivered()) {
    while (link->HasDeliverable()) {
      out.push_back(link->Receive());
    }
    if (link->HasFutureWork()) {
      link->AdvanceTick();
    }
  }
  return out;
}

TEST(FaultyLinkTest, NoFaultsIsPerfectFifo) {
  FaultyLink<int> link(RawFaults(0, 0, 0, 0, 1), /*salt=*/0);
  for (int i = 0; i < 100; ++i) {
    link.Send(i);
  }
  std::vector<int> expect(100);
  std::iota(expect.begin(), expect.end(), 0);
  EXPECT_EQ(DrainLink(&link), expect);
  EXPECT_EQ(link.stats().frames_dropped, 0);
  EXPECT_EQ(link.stats().frames_delivered, 100);
}

TEST(FaultyLinkTest, SameSeedReplaysIdentically) {
  // The whole point of the design: a fault schedule is a pure function of
  // (config.seed, salt), so every run is replayable.
  for (uint64_t seed : {3u, 17u, 40404u}) {
    FaultyLink<int> a(RawFaults(0.3, 0.2, 0.3, 4, seed), 5);
    FaultyLink<int> b(RawFaults(0.3, 0.2, 0.3, 4, seed), 5);
    for (int i = 0; i < 200; ++i) {
      a.Send(i);
      b.Send(i);
    }
    EXPECT_EQ(DrainLink(&a), DrainLink(&b));
  }
}

TEST(FaultyLinkTest, DifferentSaltsDecorrelate) {
  FaultyLink<int> a(RawFaults(0.3, 0.0, 0.3, 4, 9), 1);
  FaultyLink<int> b(RawFaults(0.3, 0.0, 0.3, 4, 9), 2);
  for (int i = 0; i < 200; ++i) {
    a.Send(i);
    b.Send(i);
  }
  EXPECT_NE(DrainLink(&a), DrainLink(&b));
}

TEST(FaultyLinkTest, DropsLoseFramesForever) {
  FaultyLink<int> link(RawFaults(0.5, 0, 0, 0, 11), 0);
  for (int i = 0; i < 400; ++i) {
    link.Send(i);
  }
  std::vector<int> got = DrainLink(&link);
  EXPECT_LT(got.size(), 400u);
  EXPECT_EQ(link.stats().frames_dropped,
            400 - static_cast<int64_t>(got.size()));
  // Survivors still arrive in order (no delay configured).
  EXPECT_TRUE(std::is_sorted(got.begin(), got.end()));
}

TEST(FaultyLinkTest, DuplicatesArriveTwice) {
  FaultyLink<int> link(RawFaults(0, 0.5, 0, 0, 13), 0);
  for (int i = 0; i < 200; ++i) {
    link.Send(i);
  }
  std::vector<int> got = DrainLink(&link);
  EXPECT_GT(got.size(), 200u);
  EXPECT_EQ(link.stats().frames_duplicated,
            static_cast<int64_t>(got.size()) - 200);
}

TEST(FaultyLinkTest, DelayReordersWithinBound) {
  FaultyLink<int> link(RawFaults(0, 0, 0.8, 3, 23), 0);
  for (int i = 0; i < 300; ++i) {
    link.Send(i);
  }
  std::vector<int> got = DrainLink(&link);
  ASSERT_EQ(got.size(), 300u);
  EXPECT_FALSE(std::is_sorted(got.begin(), got.end()));  // reordering real
  // Bounded: with max_delay 3 and window 2, no frame can be overtaken by
  // one sent more than (3 + 2) later... but all frames are sent at tick 0
  // here, so the bound is on displacement by due-tick, i.e. any permutation
  // within the same tick-window. Check everything arrived exactly once.
  std::vector<int> sorted = got;
  std::sort(sorted.begin(), sorted.end());
  std::vector<int> expect(300);
  std::iota(expect.begin(), expect.end(), 0);
  EXPECT_EQ(sorted, expect);
}

// ---------------------------------------------------------------------------
// ReliableEndpoint: exactly-once, in-order delivery under the full fault
// grid — the property sweep the issue asks for.

struct FaultGridCase {
  double drop, dup, reorder;
  int delay;
};

class ReliableSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ReliableSweep, ExactlyOnceInOrderUnderEveryFaultCombination) {
  const FaultGridCase grid[] = {
      {0.0, 0.0, 0.0, 0},  {0.3, 0.0, 0.0, 0},  {0.0, 0.4, 0.0, 0},
      {0.0, 0.0, 0.5, 3},  {0.0, 0.0, 0.0, 4},  {0.3, 0.4, 0.0, 0},
      {0.3, 0.0, 0.5, 3},  {0.0, 0.4, 0.5, 4},  {0.3, 0.4, 0.5, 4},
  };
  for (const FaultGridCase& g : grid) {
    FaultConfig f = RawFaults(g.drop, g.dup, g.reorder, g.delay, GetParam());
    f.reliable = true;
    f.retransmit_timeout_ticks = 6;
    ASSERT_TRUE(f.Validate().ok());
    ReliableEndpoint<int> ep(f, /*salt=*/7, {});
    constexpr int kMessages = 120;
    std::vector<int> got;
    int sent = 0;
    // Interleave sends with ticks so timers and in-flight frames overlap
    // live traffic, then drain.
    for (int tick = 0; sent < kMessages || ep.HasTimedWork() ||
                       ep.HasMessage();
         ++tick) {
      if (sent < kMessages && tick % 2 == 0) {
        ep.Send(sent++);
      }
      while (ep.HasMessage()) {
        got.push_back(ep.Receive());
      }
      if (sent == kMessages && !ep.HasTimedWork() && !ep.HasMessage()) {
        break;
      }
      ep.Tick();
      ASSERT_LT(tick, 1000000) << "protocol failed to quiesce";
    }
    std::vector<int> expect(kMessages);
    std::iota(expect.begin(), expect.end(), 0);
    EXPECT_EQ(got, expect) << "drop=" << g.drop << " dup=" << g.dup
                           << " reorder=" << g.reorder
                           << " delay=" << g.delay
                           << " seed=" << GetParam();
    // Under drops the protocol must actually have worked for a living:
    // retransmissions happened, and they are visible in the stats.
    if (g.drop > 0) {
      EXPECT_GT(ep.stats().retransmitted_frames, 0);
    }
    if (g.dup > 0 || g.drop > 0) {
      EXPECT_GT(ep.stats().duplicates_discarded, 0);
    }
    EXPECT_GT(ep.stats().acks_sent, 0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReliableSweep,
                         ::testing::Range<uint64_t>(1, 13));

TEST(ReliableEndpointTest, SurfacesOverheadThroughHooks) {
  FaultConfig f = RawFaults(0.4, 0, 0, 0, 99);
  f.reliable = true;
  f.retransmit_timeout_ticks = 4;
  int64_t retransmits = 0, retransmit_bytes = 0, acks = 0;
  TransportHooks<int> hooks;
  hooks.on_retransmit = [&](int64_t bytes) {
    ++retransmits;
    retransmit_bytes += bytes;
  };
  hooks.on_ack_frame = [&] { ++acks; };
  hooks.byte_size = [](const int&) -> int64_t { return 8; };
  ReliableEndpoint<int> ep(f, 3, std::move(hooks));
  for (int i = 0; i < 50; ++i) {
    ep.Send(i);
  }
  int guard = 0;
  while (ep.HasTimedWork() || ep.HasMessage()) {
    while (ep.HasMessage()) {
      ep.Receive();
    }
    ep.Tick();
    ASSERT_LT(++guard, 100000);
  }
  EXPECT_GT(retransmits, 0);
  EXPECT_EQ(retransmit_bytes, retransmits * 8);
  EXPECT_GT(acks, 0);
  EXPECT_EQ(ep.stats().retransmitted_frames, retransmits);
  EXPECT_EQ(ep.stats().acks_sent, acks);
}

// ---------------------------------------------------------------------------
// Regression (spurious retransmission): the timer used to re-send EVERY
// unacked frame on expiry, including frames sent on the immediately
// preceding tick. With per-frame send-time tracking, a frame younger than
// the timeout is never retransmitted — so on a loss-free link whose round
// trip (data delay + ack delay <= 2 * max_delay_ticks) is shorter than the
// timeout, a steady send stream must produce ZERO retransmissions.

TEST(ReliableEndpointTest, NoRetransmitOfFramesYoungerThanTimeout) {
  FaultConfig f = RawFaults(0.0, 0.0, 0.0, /*delay=*/6, 31);
  f.reliable = true;
  f.retransmit_timeout_ticks = 16;  // > worst-case RTT of 12 ticks
  ASSERT_TRUE(f.Validate().ok());
  ReliableEndpoint<int> ep(f, /*salt=*/1, {});
  int sent = 0;
  int guard = 0;
  // One fresh frame per tick keeps the unacked window non-empty across
  // many timer deadlines — exactly the schedule that used to provoke
  // spurious re-sends of just-transmitted frames.
  while (sent < 60 || ep.HasTimedWork() || ep.HasMessage()) {
    if (sent < 60) {
      ep.Send(sent++);
    }
    while (ep.HasMessage()) {
      ep.Receive();
    }
    ep.Tick();
    ASSERT_LT(++guard, 100000);
  }
  EXPECT_EQ(ep.stats().retransmitted_frames, 0)
      << "frames younger than retransmit_timeout_ticks were re-sent";
}

// ---------------------------------------------------------------------------
// Regression (retransmit storm): a fixed timeout re-sends the full window
// every 8 ticks forever at high drop rates. Exponential backoff must grow
// the effective timeout while no ack progress arrives, cap it, and reset it
// once an ack lands.

TEST(ReliableEndpointTest, BackoffGrowsCapsAndResetsOnAckProgress) {
  FaultConfig f = RawFaults(0.0, 0.0, 0.0, /*delay=*/0, 17);
  f.reliable = true;
  f.retransmit_timeout_ticks = 4;
  f.retransmit_backoff = true;
  f.retransmit_backoff_cap = 8;
  ReliableEndpoint<int> ep(f, 1, {});
  // Silence the receiver so no ack can ever arrive: every expiry re-sends
  // and doubles the timeout, deterministically.
  ep.CrashReceiver();
  ep.Send(42);
  EXPECT_EQ(ep.CurrentTimeout(), 4u);
  auto run_until_retransmit = [&] {
    int64_t before = ep.stats().retransmitted_frames;
    int guard = 0;
    while (ep.stats().retransmitted_frames == before) {
      ep.Tick();
      ASSERT_LT(++guard, 1000);
    }
  };
  run_until_retransmit();
  EXPECT_EQ(ep.CurrentTimeout(), 8u);
  run_until_retransmit();
  EXPECT_EQ(ep.CurrentTimeout(), 16u);
  run_until_retransmit();
  EXPECT_EQ(ep.CurrentTimeout(), 32u);  // 8x cap
  run_until_retransmit();
  EXPECT_EQ(ep.CurrentTimeout(), 32u) << "backoff exceeded its cap";
  // Ack progress resets the backoff to the base timeout.
  ep.RestartReceiver();
  int guard = 0;
  while (ep.HasTimedWork() && ep.CurrentTimeout() != 4u) {
    ep.Tick();
    ASSERT_LT(++guard, 1000);
  }
  while (ep.HasMessage()) {
    EXPECT_EQ(ep.Receive(), 42);
  }
  EXPECT_EQ(ep.CurrentTimeout(), 4u);
}

TEST(ReliableEndpointTest, BackoffCutsAmplificationWhenAcksStop) {
  // The amplification scenario: a window of frames outstanding and NO ack
  // progress (dead or partitioned peer). A fixed timeout re-sends the whole
  // window every interval; exponential backoff spaces the bursts out
  // geometrically, so the same blackout produces far fewer duplicate
  // frames — and once the peer returns, delivery is still exactly-once.
  auto run = [](bool backoff) {
    FaultConfig f = RawFaults(0.0, 0.0, 0.0, /*delay=*/0, 7);
    f.reliable = true;
    f.retransmit_timeout_ticks = 4;
    f.retransmit_backoff = backoff;
    f.retransmit_backoff_cap = 8;
    ReliableEndpoint<int> ep(f, 2, {});
    ep.CrashReceiver();  // blackout FIRST: with no wire delay an up
                         // receiver would absorb the sends instantly
    for (int i = 0; i < 20; ++i) {
      ep.Send(i);
    }
    for (int t = 0; t < 200; ++t) {
      ep.Tick();
    }
    const int64_t during_blackout = ep.stats().retransmitted_frames;
    ep.RestartReceiver();
    std::vector<int> got;
    int guard = 0;
    while (ep.HasTimedWork() || ep.HasMessage()) {
      while (ep.HasMessage()) {
        got.push_back(ep.Receive());
      }
      ep.Tick();
      EXPECT_LT(++guard, 1000000);
      if (guard >= 1000000) {
        break;
      }
    }
    while (ep.HasMessage()) {
      got.push_back(ep.Receive());
    }
    std::vector<int> expect(20);
    std::iota(expect.begin(), expect.end(), 0);
    EXPECT_EQ(got, expect) << "backoff=" << backoff;
    return during_blackout;
  };
  int64_t with_backoff = run(true);
  int64_t without_backoff = run(false);
  EXPECT_GT(with_backoff, 0);
  // 200 ticks / fixed timeout 4 ~= 50 window re-sends; backed-off bursts at
  // 4+8+16+32+(cap)32... ~= 8. Leave slack, just require a big gap.
  EXPECT_LT(with_backoff * 3, without_backoff)
      << "backoff should shrink the re-send amplification";
}

// ---------------------------------------------------------------------------
// TransportChannel: the three modes behind one Channel-shaped surface.

TEST(TransportChannelTest, DisabledConfigIsPlainPassthrough) {
  TransportChannel<int> ch;
  ASSERT_TRUE(ch.Configure(FaultConfig(), 0).ok());
  ch.Send(1);
  ch.Send(2);
  EXPECT_FALSE(ch.HasTimedWork());  // passthrough never needs time
  EXPECT_EQ(ch.Front(), 1);
  EXPECT_EQ(ch.Receive(), 1);
  EXPECT_EQ(ch.Receive(), 2);
  EXPECT_FALSE(ch.HasMessage());
  const TransportStats s = ch.stats();
  EXPECT_EQ(s.link.frames_sent, 0);  // no fault machinery engaged at all
}

TEST(TransportChannelTest, ReliableModeRestoresFifoUnderFaults) {
  // The Section 3 axiom, restated at the transport level: messages are
  // processed in the order they were sent, exactly once, even when the
  // wire drops, duplicates, and reorders.
  FaultConfig f = RawFaults(0.25, 0.25, 0.4, 3, 4242);
  f.reliable = true;
  TransportChannel<int> ch;
  ASSERT_TRUE(ch.Configure(f, 9).ok());
  std::vector<int> got;
  for (int i = 0; i < 80; ++i) {
    ch.Send(i);
  }
  int guard = 0;
  while (ch.HasMessage() || ch.HasTimedWork()) {
    while (ch.HasMessage()) {
      got.push_back(ch.Receive());
    }
    ch.Tick();
    ASSERT_LT(++guard, 100000);
  }
  std::vector<int> expect(80);
  std::iota(expect.begin(), expect.end(), 0);
  EXPECT_EQ(got, expect);
}

TEST(TransportChannelTest, InvalidConfigRejected) {
  TransportChannel<int> ch;
  FaultConfig f;
  f.enabled = true;
  f.drop_rate = 1.5;
  EXPECT_FALSE(ch.Configure(f, 0).ok());
  FaultConfig g;
  g.enabled = true;
  g.reliable = true;
  g.drop_rate = 1.0;  // retransmission could never succeed
  EXPECT_FALSE(ch.Configure(g, 0).ok());
}

// ---------------------------------------------------------------------------
// Simulation level: the Section 3 trigger-ordering axiom, the byte-identity
// of fault-free runs, and the consistency matrix under faults.

FaultConfig SimFaults(double drop, double dup, double reorder, int delay,
                      uint64_t seed, bool reliable) {
  FaultConfig f = RawFaults(drop, dup, reorder, delay, seed);
  f.reliable = reliable;
  f.retransmit_timeout_ticks = 6;
  return f;
}

TEST(TransportSimulationTest, FaultFreeRunIsByteIdenticalToSeedBehavior) {
  // FaultConfig off must leave every observable of the simulation exactly
  // as the pre-transport system produced it (the strict-opt-in guarantee).
  Result<PaperExample> ex = MakePaperExample2();
  ASSERT_TRUE(ex.ok());
  SimulationOptions plain;
  SimulationOptions wired;
  wired.fault = FaultConfig();  // explicit default: disabled
  auto run = [&](SimulationOptions options) {
    std::unique_ptr<Simulation> sim =
        MustMakeSim(ex->initial, ex->view, Algorithm::kEca, options);
    sim->SetUpdateScript(ex->updates);
    BestCasePolicy policy;
    EXPECT_TRUE(RunToQuiescence(sim.get(), &policy).ok());
    return sim;
  };
  std::unique_ptr<Simulation> a = run(plain);
  std::unique_ptr<Simulation> b = run(wired);
  EXPECT_EQ(a->warehouse_view(), b->warehouse_view());
  EXPECT_EQ(a->meter().messages(), b->meter().messages());
  EXPECT_EQ(a->meter().bytes_transferred(), b->meter().bytes_transferred());
  EXPECT_EQ(a->meter().retransmitted_messages(), 0);
  EXPECT_EQ(a->meter().ack_messages(), 0);
  EXPECT_EQ(a->transport_stats().link.frames_sent, 0);
  ConsistencyReport ra = CheckConsistency(a->state_log());
  ConsistencyReport rb = CheckConsistency(b->state_log());
  EXPECT_EQ(ra.strongly_consistent, rb.strongly_consistent);
}

TEST(TransportSimulationTest, TriggerOrderingAxiomHoldsWithProtocol) {
  // Section 3's ordering axiom, the one the whole correctness theory rests
  // on: messages are received in the order sent. With faults on and the
  // protocol enabled, the [U1, A1, U2] arrival order of the fault-free
  // system must be preserved — under ECA that means Q2 needs no
  // compensation, which the query-term meter makes observable.
  Result<PaperExample> ex = MakePaperExample2();
  ASSERT_TRUE(ex.ok());
  SimulationOptions options;
  options.fault = SimFaults(0.3, 0.3, 0.4, 3, 77, /*reliable=*/true);
  std::unique_ptr<Simulation> sim =
      MustMakeSim(ex->initial, ex->view, Algorithm::kEca, options);
  sim->SetUpdateScript(ex->updates);
  auto pump = [&](auto can, auto step) {
    // Run `step` once, ticking transport time until the action enables.
    int guard = 0;
    while (!(sim.get()->*can)()) {
      ASSERT_TRUE(sim->CanTransportTick());
      ASSERT_TRUE(sim->StepTransportTick().ok());
      ASSERT_LT(++guard, 100000);
    }
    ASSERT_TRUE((sim.get()->*step)().ok());
  };
  pump(&Simulation::CanSourceUpdate, &Simulation::StepSourceUpdate);  // U1
  pump(&Simulation::CanWarehouseStep, &Simulation::StepWarehouse);  // sees U1
  pump(&Simulation::CanSourceAnswer, &Simulation::StepSourceAnswer);  // A1
  pump(&Simulation::CanSourceUpdate, &Simulation::StepSourceUpdate);  // U2
  // The warehouse must receive A1 strictly before U2 even though both are
  // in flight on a faulty wire: the protocol's FIFO guarantee.
  pump(&Simulation::CanWarehouseStep, &Simulation::StepWarehouse);  // A1
  pump(&Simulation::CanWarehouseStep, &Simulation::StepWarehouse);  // U2
  EXPECT_EQ(sim->meter().query_terms(), 2);  // 1 (Q1) + 1 (Q2, uncompensated)
}

// One full run over the Example 6 chain workload under a seeded fault
// schedule; returns the report (and the sim through `out` if requested).
ConsistencyReport RunFaulted(Algorithm algorithm, uint64_t seed,
                             const FaultConfig& fault, int rv_period = 1,
                             bool keyed = false,
                             std::unique_ptr<Simulation>* out = nullptr,
                             Status* run_status = nullptr) {
  Random rng(seed);
  Result<Workload> w = keyed ? MakeKeyedWorkload({12, 3}, &rng)
                             : MakeExample6Workload({12, 2}, &rng);
  EXPECT_TRUE(w.ok()) << w.status();
  Result<std::vector<Update>> updates = MakeMixedUpdates(*w, 8, 0.35, &rng);
  EXPECT_TRUE(updates.ok()) << updates.status();
  SimulationOptions options;
  options.fault = fault;
  std::unique_ptr<Simulation> sim = MustMakeSim(
      w->initial, w->view, algorithm, options, rv_period);
  sim->SetUpdateScript(*updates);
  RandomPolicy policy(seed);
  Status run = RunToQuiescence(sim.get(), &policy);
  if (run_status != nullptr) {
    *run_status = run;
  } else {
    EXPECT_TRUE(run.ok()) << run;
  }
  ConsistencyReport report = CheckConsistency(sim->state_log());
  if (out != nullptr) {
    *out = std::move(sim);
  }
  return report;
}

// The acceptance sweep: >= 50 seeded fault schedules at drop <= 0.3, the
// protocol on, and every algorithm of the matrix keeping its Section 3.1
// verdict. Seeds double as fault-schedule seeds so each run draws a
// different schedule.
class FaultedMatrixSweep : public ::testing::TestWithParam<uint64_t> {
 protected:
  FaultConfig Protocol(uint64_t seed) {
    return SimFaults(0.3, 0.2, 0.3, 2, seed * 1337 + 1, /*reliable=*/true);
  }
};

TEST_P(FaultedMatrixSweep, EcaStaysStronglyConsistent) {
  EXPECT_TRUE(RunFaulted(Algorithm::kEca, GetParam(), Protocol(GetParam()))
                  .strongly_consistent);
}

TEST_P(FaultedMatrixSweep, EcaKeyStaysStronglyConsistent) {
  EXPECT_TRUE(RunFaulted(Algorithm::kEcaKey, GetParam(),
                         Protocol(GetParam()), 1, /*keyed=*/true)
                  .strongly_consistent);
}

TEST_P(FaultedMatrixSweep, EcaLocalStaysStronglyConsistent) {
  EXPECT_TRUE(RunFaulted(Algorithm::kEcaLocal, GetParam(),
                         Protocol(GetParam()))
                  .strongly_consistent);
}

TEST_P(FaultedMatrixSweep, RvStaysStronglyConsistent) {
  EXPECT_TRUE(RunFaulted(Algorithm::kRv, GetParam(), Protocol(GetParam()),
                         /*rv_period=*/2)
                  .strongly_consistent);
}

TEST_P(FaultedMatrixSweep, ScStaysComplete) {
  ConsistencyReport r =
      RunFaulted(Algorithm::kSc, GetParam(), Protocol(GetParam()));
  EXPECT_TRUE(r.strongly_consistent) << r.ToString();
  EXPECT_TRUE(r.complete) << r.ToString();
}

INSTANTIATE_TEST_SUITE_P(FaultSchedules, FaultedMatrixSweep,
                         ::testing::Range<uint64_t>(1, 51));

// ---------------------------------------------------------------------------
// Raw faulty links (protocol off): the concrete anomalies. A dropped
// notification or answer loses tuples; a duplicated notification applies an
// update twice and manufactures phantom multiplicity. Both Basic and ECA
// break — the paper's algorithms assume the channel axiom and cannot
// survive its revocation.

struct AnomalyTally {
  int lost_tuple = 0;       // some tuple's warehouse count < source count
  int duplicate_tuple = 0;  // some tuple's warehouse count > source count
  int run_errors = 0;       // protocol-violation hard errors (e.g. an
                            // answer for an unknown query id)
  int not_strong = 0;       // checker-refuted consistency levels
};

AnomalyTally SweepRawFaults(Algorithm algorithm, const FaultConfig& base,
                            int seeds) {
  AnomalyTally tally;
  for (int seed = 1; seed <= seeds; ++seed) {
    FaultConfig f = base;
    f.seed = static_cast<uint64_t>(seed) * 71 + 5;
    std::unique_ptr<Simulation> sim;
    Status run;
    ConsistencyReport r = RunFaulted(
        algorithm, static_cast<uint64_t>(seed), f, 1, false, &sim, &run);
    if (!run.ok()) {
      ++tally.run_errors;  // e.g. ECA receiving a duplicated answer
      continue;
    }
    if (!r.strongly_consistent) {
      ++tally.not_strong;
    }
    // Compare final warehouse view against the true final source view,
    // tuple by tuple, to classify the damage.
    Result<Relation> source_view = sim->SourceViewNow();
    if (!source_view.ok()) {
      ADD_FAILURE() << source_view.status();
      continue;
    }
    const Relation& wh = sim->warehouse_view();
    bool lost = false, duplicated = false;
    for (const auto& [tuple, count] : source_view->SortedEntries()) {
      if (wh.CountOf(tuple) < count) {
        lost = true;
      }
    }
    for (const auto& [tuple, count] : wh.SortedEntries()) {
      if (count > source_view->CountOf(tuple)) {
        duplicated = true;
      }
    }
    tally.lost_tuple += lost ? 1 : 0;
    tally.duplicate_tuple += duplicated ? 1 : 0;
  }
  return tally;
}

TEST(RawFaultAnomalyTest, DropsProduceLostTuplesUnderBasicAndEca) {
  FaultConfig drops = SimFaults(0.3, 0, 0, 0, 0, /*reliable=*/false);
  for (Algorithm algorithm : {Algorithm::kBasic, Algorithm::kEca}) {
    AnomalyTally t = SweepRawFaults(algorithm, drops, 25);
    EXPECT_GT(t.lost_tuple, 0) << AlgorithmName(algorithm);
    EXPECT_GT(t.not_strong + t.run_errors, 0) << AlgorithmName(algorithm);
  }
}

TEST(RawFaultAnomalyTest, DuplicatesProduceDuplicateTuples) {
  // Duplicated notifications make the warehouse apply an update twice;
  // under Basic the double-applied delta lands directly in the view.
  FaultConfig dups = SimFaults(0, 0.4, 0, 0, 0, /*reliable=*/false);
  AnomalyTally basic = SweepRawFaults(Algorithm::kBasic, dups, 25);
  EXPECT_GT(basic.duplicate_tuple, 0);
  // ECA breaks too: a duplicated notification double-compensates and a
  // duplicated answer is a hard protocol violation. Either way the
  // Section 3.1 guarantee is gone.
  AnomalyTally eca = SweepRawFaults(Algorithm::kEca, dups, 25);
  EXPECT_GT(eca.duplicate_tuple + eca.run_errors + eca.not_strong, 0);
}

TEST(RawFaultAnomalyTest, ProtocolRepairsTheSameSchedules) {
  // The schedules that just broke Basic/ECA become harmless once the
  // reliable layer is switched on — same seeds, same rates.
  FaultConfig f = SimFaults(0.3, 0.4, 0.3, 2, 0, /*reliable=*/true);
  for (int seed = 1; seed <= 10; ++seed) {
    f.seed = static_cast<uint64_t>(seed) * 71 + 5;
    ConsistencyReport r =
        RunFaulted(Algorithm::kEca, static_cast<uint64_t>(seed), f);
    EXPECT_TRUE(r.strongly_consistent) << "seed " << seed << ": "
                                       << r.ToString();
  }
}

// With faults on + protocol, the bench_consistency_matrix verdicts are
// unchanged: the strong algorithms stay strong AND the known-broken
// configurations stay broken (faults must not mask the Section 5.2
// ablation anomalies either).
TEST(RawFaultAnomalyTest, MatrixVerdictsUnchangedUnderProtocol) {
  int basic_violations = 0;
  for (int seed = 1; seed <= 15; ++seed) {
    FaultConfig f =
        SimFaults(0.2, 0.2, 0.2, 2, static_cast<uint64_t>(seed) * 31 + 7,
                  /*reliable=*/true);
    ConsistencyReport r =
        RunFaulted(Algorithm::kBasic, static_cast<uint64_t>(seed), f);
    if (!r.strongly_consistent) {
      ++basic_violations;
    }
  }
  EXPECT_GT(basic_violations, 0)
      << "the reliable transport must not accidentally fix Basic";
}

// ---------------------------------------------------------------------------
// Asymmetric faults: the ack path gets its own schedule (AckPathFaults),
// modeling the common real link where one direction is clean and the other
// lossy.

TEST(AsymmetricFaultTest, AckPathInheritsUnlessOverridden) {
  FaultConfig f = RawFaults(0.3, 0.1, 0.2, 4, 11);
  // No overrides: the ack path IS the data path's schedule.
  EXPECT_FALSE(f.ack.any());
  FaultConfig ack = f.ForAckPath();
  EXPECT_EQ(ack.drop_rate, 0.3);
  EXPECT_EQ(ack.duplicate_rate, 0.1);
  EXPECT_EQ(ack.max_delay_ticks, 4);
  // Overriding one knob replaces it and leaves the rest inherited.
  f.ack.drop_rate = 0.0;
  f.ack.max_delay_ticks = 1;
  EXPECT_TRUE(f.ack.any());
  ack = f.ForAckPath();
  EXPECT_EQ(ack.drop_rate, 0.0);
  EXPECT_EQ(ack.max_delay_ticks, 1);
  EXPECT_EQ(ack.duplicate_rate, 0.1);  // inherited
  EXPECT_EQ(ack.reorder_rate, 0.2);    // inherited
}

TEST(AsymmetricFaultTest, ValidateCatchesBadAckOverrides) {
  FaultConfig f = RawFaults(0.1, 0, 0, 0, 3);
  f.reliable = true;
  ASSERT_TRUE(f.Validate().ok());
  f.ack.drop_rate = 1.5;
  EXPECT_FALSE(f.Validate().ok());
  f.ack.drop_rate = 1.0;  // acks could never get through
  EXPECT_FALSE(f.Validate().ok());
}

// Regression (the asymmetric retransmission surface): with a CLEAN data
// path and a LOSSY ack path, every data frame is delivered on first
// transmission — so even though lost acks force the sender to re-send,
// the receiver must discard every one of those copies as a duplicate and
// deliver exactly once, in order.
TEST(AsymmetricFaultTest, AckOnlyLossNeverDuplicatesDelivery) {
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    FaultConfig f = RawFaults(0.0, 0.0, 0.0, /*delay=*/1, seed);
    f.reliable = true;
    f.retransmit_timeout_ticks = 5;
    f.ack.drop_rate = 0.5;  // only the return path is lossy
    ASSERT_TRUE(f.Validate().ok());
    ReliableEndpoint<int> ep(f, /*salt=*/4, {});
    std::vector<int> got;
    int sent = 0;
    int guard = 0;
    while (sent < 60 || ep.HasTimedWork() || ep.HasMessage()) {
      if (sent < 60) {
        ep.Send(sent++);
      }
      while (ep.HasMessage()) {
        got.push_back(ep.Receive());
      }
      ep.Tick();
      ASSERT_LT(++guard, 100000) << "seed " << seed;
    }
    std::vector<int> expect(60);
    std::iota(expect.begin(), expect.end(), 0);
    EXPECT_EQ(got, expect) << "seed " << seed;
    // The asymmetry really happened: acks died, data frames did not.
    EXPECT_GT(ep.ack_link_stats().frames_dropped, 0) << "seed " << seed;
    EXPECT_EQ(ep.data_link_stats().frames_dropped, 0) << "seed " << seed;
    // Every retransmitted data frame was a duplicate at the receiver —
    // first transmissions all arrived (clean data path), so dedup must
    // have absorbed exactly the re-sent copies.
    EXPECT_EQ(ep.stats().duplicates_discarded,
              ep.stats().retransmitted_frames)
        << "seed " << seed;
  }
}

TEST(AsymmetricFaultTest, LossyUplinkCleanDownlinkEndToEnd) {
  // The warehouse direction drops frames while the ack direction is clean:
  // retransmission repairs the loss and delivery stays exactly-once.
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    FaultConfig f = RawFaults(0.35, 0.0, 0.0, /*delay=*/1, seed);
    f.reliable = true;
    f.retransmit_timeout_ticks = 5;
    f.ack.drop_rate = 0.0;
    f.ack.max_delay_ticks = 0;
    ASSERT_TRUE(f.Validate().ok());
    ReliableEndpoint<int> ep(f, /*salt=*/6, {});
    std::vector<int> got;
    int guard = 0;
    for (int i = 0; i < 40; ++i) {
      ep.Send(i);
    }
    while (ep.HasTimedWork() || ep.HasMessage()) {
      while (ep.HasMessage()) {
        got.push_back(ep.Receive());
      }
      ep.Tick();
      ASSERT_LT(++guard, 100000) << "seed " << seed;
    }
    std::vector<int> expect(40);
    std::iota(expect.begin(), expect.end(), 0);
    EXPECT_EQ(got, expect) << "seed " << seed;
    EXPECT_GT(ep.data_link_stats().frames_dropped, 0) << "seed " << seed;
    EXPECT_EQ(ep.ack_link_stats().frames_dropped, 0) << "seed " << seed;
  }
}

// ---------------------------------------------------------------------------
// Adaptive retransmission timeout (Jacobson/Karn).

TEST(AdaptiveRtoTest, DropFreeRunRetransmitsExactlyNothing) {
  // The drop-0 invariant the floor buys: with no losses anywhere, an
  // adaptive RTO must never fire — even when the configured base timeout
  // is far below the link's real round trip (which WOULD fire spuriously
  // with the fixed timer).
  FaultConfig f = RawFaults(0.0, 0.0, 0.0, /*delay=*/6, 23);
  f.reliable = true;
  f.retransmit_timeout_ticks = 2;  // << the ~13-tick worst-case RTT
  auto run = [&](bool adaptive) {
    FaultConfig g = f;
    g.adaptive_rto = adaptive;
    ReliableEndpoint<int> ep(g, /*salt=*/2, {});
    int sent = 0;
    int guard = 0;
    while (sent < 60 || ep.HasTimedWork() || ep.HasMessage()) {
      if (sent < 60) {
        ep.Send(sent++);
      }
      while (ep.HasMessage()) {
        ep.Receive();
      }
      ep.Tick();
      EXPECT_LT(++guard, 100000);
    }
    return ep.stats().retransmitted_frames;
  };
  EXPECT_EQ(run(/*adaptive=*/true), 0)
      << "adaptive RTO fired on a loss-free link";
  EXPECT_GT(run(/*adaptive=*/false), 0)
      << "the fixed 2-tick timer should have fired spuriously (otherwise "
         "this test no longer exercises the floor)";
}

TEST(AdaptiveRtoTest, EstimatorConvergesWithinTheRttBound) {
  FaultConfig f = RawFaults(0.0, 0.0, 0.0, /*delay=*/4, 5);
  f.reliable = true;
  f.adaptive_rto = true;
  f.retransmit_timeout_ticks = 30;  // initial estimate, pre-sample only
  ReliableEndpoint<int> ep(f, /*salt=*/3, {});
  EXPECT_FALSE(ep.HasRttSample());
  EXPECT_EQ(ep.RtoFloor(),
            static_cast<uint64_t>(f.MaxRoundTripTicks()) + 1);
  int sent = 0;
  int guard = 0;
  while (sent < 80 || ep.HasTimedWork() || ep.HasMessage()) {
    if (sent < 80) {
      ep.Send(sent++);
    }
    while (ep.HasMessage()) {
      ep.Receive();
    }
    ep.Tick();
    ASSERT_LT(++guard, 100000);
  }
  ASSERT_TRUE(ep.HasRttSample());
  // Every sample was a real round trip on this link, so the smoothed
  // estimate lands inside the physical bound.
  EXPECT_GT(ep.SmoothedRtt(), 0.0);
  EXPECT_LE(ep.SmoothedRtt(),
            static_cast<double>(f.MaxRoundTripTicks()));
  EXPECT_GE(ep.RttVariance(), 0.0);
  // And the live timeout is the floored Jacobson estimate, not the stale
  // configured base.
  EXPECT_GE(ep.CurrentTimeout(), ep.RtoFloor());
  EXPECT_LT(ep.CurrentTimeout(), 30u);
}

TEST(AdaptiveRtoTest, KarnRuleExcludesAmbiguousAcksFromSampling) {
  // An ack for a frame that was ever re-sent is ambiguous: it could belong
  // to either copy, so sampling it would poison the estimator. The
  // journal-recovered restart path re-sends deterministically (no fault
  // coin involved), which lets the exclusion be asserted exactly: after
  // the ambiguous ack the estimator must still be empty, and only a fresh
  // never-retransmitted frame may seed it.
  FaultConfig f = RawFaults(0.0, 0.0, 0.0, /*delay=*/2, 1);
  f.reliable = true;
  f.adaptive_rto = true;
  ReliableEndpoint<int> ep(f, /*salt=*/5, {});
  ep.Send(7);
  ep.CrashSender();
  std::map<uint64_t, int> window;
  window.emplace(0, 7);
  ep.RestartSender(/*next_seq=*/1, std::move(window));
  int delivered = 0;
  int guard = 0;
  while (ep.HasTimedWork() || ep.HasMessage()) {
    while (ep.HasMessage()) {
      ep.Receive();
      ++delivered;
    }
    ep.Tick();
    ASSERT_LT(++guard, 10000);
  }
  EXPECT_EQ(delivered, 1);  // dedup absorbed the surviving original copy
  EXPECT_GT(ep.stats().retransmitted_frames, 0);
  EXPECT_FALSE(ep.HasRttSample())
      << "an ambiguous (retransmitted) ack fed the RTT estimator";
  // A clean frame seeds the estimate, and within the wire bound.
  ep.Send(8);
  while (ep.HasTimedWork() || ep.HasMessage()) {
    while (ep.HasMessage()) {
      ep.Receive();
    }
    ep.Tick();
    ASSERT_LT(++guard, 10000);
  }
  EXPECT_TRUE(ep.HasRttSample());
  EXPECT_LE(ep.SmoothedRtt(), static_cast<double>(f.MaxRoundTripTicks()));
  EXPECT_GE(ep.RttVariance(), 0.0);
}

TEST(AdaptiveRtoTest, DefaultsOffAndValidates) {
  // adaptive_rto defaults OFF: the exact-timeout assertions elsewhere in
  // this file depend on the fixed timer unless a config opts in.
  FaultConfig f;
  EXPECT_FALSE(f.adaptive_rto);
  f.enabled = true;
  f.reliable = true;
  f.adaptive_rto = true;
  f.rto_min_ticks = 0;
  EXPECT_FALSE(f.Validate().ok());
  f.rto_min_ticks = 1;
  EXPECT_TRUE(f.Validate().ok());
}

}  // namespace
}  // namespace wvm
