#include "relational/predicate.h"

#include <gtest/gtest.h>

namespace wvm {
namespace {

Schema WXSchema() { return Schema::Ints({"W", "X"}); }

BoundPredicate MustBind(const Predicate& p, const Schema& s) {
  Result<BoundPredicate> bound = p.Bind(s);
  EXPECT_TRUE(bound.ok()) << bound.status();
  return *bound;
}

TEST(PredicateTest, TrueAcceptsEverything) {
  BoundPredicate p = MustBind(Predicate::True(), WXSchema());
  EXPECT_TRUE(p.Eval(Tuple::Ints({1, 2})));
  EXPECT_TRUE(Predicate::True().IsTrue());
}

TEST(PredicateTest, AttrVsConstComparisons) {
  Predicate p = Predicate::Compare(Operand::Attr("W"), CompareOp::kGt,
                                   Operand::ConstInt(5));
  BoundPredicate b = MustBind(p, WXSchema());
  EXPECT_TRUE(b.Eval(Tuple::Ints({6, 0})));
  EXPECT_FALSE(b.Eval(Tuple::Ints({5, 0})));
}

TEST(PredicateTest, AttrVsAttrComparisons) {
  BoundPredicate b = MustBind(
      Predicate::AttrCompare("W", CompareOp::kEq, "X"), WXSchema());
  EXPECT_TRUE(b.Eval(Tuple::Ints({3, 3})));
  EXPECT_FALSE(b.Eval(Tuple::Ints({3, 4})));
}

TEST(PredicateTest, AllSixOperators) {
  const Tuple lo = Tuple::Ints({1, 2});
  const Tuple eq = Tuple::Ints({2, 2});
  const Tuple hi = Tuple::Ints({3, 2});
  struct Case {
    CompareOp op;
    bool lo, eq, hi;
  } cases[] = {
      {CompareOp::kEq, false, true, false},
      {CompareOp::kNe, true, false, true},
      {CompareOp::kLt, true, false, false},
      {CompareOp::kLe, true, true, false},
      {CompareOp::kGt, false, false, true},
      {CompareOp::kGe, false, true, true},
  };
  for (const Case& c : cases) {
    BoundPredicate b =
        MustBind(Predicate::AttrCompare("W", c.op, "X"), WXSchema());
    EXPECT_EQ(b.Eval(lo), c.lo) << CompareOpSymbol(c.op);
    EXPECT_EQ(b.Eval(eq), c.eq) << CompareOpSymbol(c.op);
    EXPECT_EQ(b.Eval(hi), c.hi) << CompareOpSymbol(c.op);
  }
}

TEST(PredicateTest, BooleanConnectives) {
  Predicate w_pos = Predicate::Compare(Operand::Attr("W"), CompareOp::kGt,
                                       Operand::ConstInt(0));
  Predicate x_pos = Predicate::Compare(Operand::Attr("X"), CompareOp::kGt,
                                       Operand::ConstInt(0));
  BoundPredicate conj =
      MustBind(Predicate::And(w_pos, x_pos), WXSchema());
  EXPECT_TRUE(conj.Eval(Tuple::Ints({1, 1})));
  EXPECT_FALSE(conj.Eval(Tuple::Ints({1, 0})));

  BoundPredicate disj = MustBind(Predicate::Or(w_pos, x_pos), WXSchema());
  EXPECT_TRUE(disj.Eval(Tuple::Ints({1, 0})));
  EXPECT_FALSE(disj.Eval(Tuple::Ints({0, 0})));

  BoundPredicate neg = MustBind(Predicate::Not(w_pos), WXSchema());
  EXPECT_FALSE(neg.Eval(Tuple::Ints({1, 0})));
  EXPECT_TRUE(neg.Eval(Tuple::Ints({0, 0})));
}

TEST(PredicateTest, AndWithTrueSimplifies) {
  Predicate p = Predicate::And(Predicate::True(), Predicate::True());
  EXPECT_TRUE(p.IsTrue());
  Predicate q = Predicate::And(
      Predicate::True(), Predicate::AttrCompare("W", CompareOp::kEq, "X"));
  EXPECT_FALSE(q.IsTrue());
  EXPECT_TRUE(q.AsComparison().has_value());
}

TEST(PredicateTest, NotTrueIsConstantFalse) {
  BoundPredicate b = MustBind(Predicate::Not(Predicate::True()), WXSchema());
  EXPECT_FALSE(b.Eval(Tuple::Ints({1, 1})));
}

TEST(PredicateTest, BindRejectsUnknownAttribute) {
  Predicate p = Predicate::AttrCompare("Q", CompareOp::kEq, "X");
  EXPECT_EQ(p.Bind(WXSchema()).status().code(), StatusCode::kNotFound);
}

TEST(PredicateTest, BindRejectsTypeMismatch) {
  Schema s({{"W", ValueType::kInt, false}, {"N", ValueType::kString, false}});
  Predicate p = Predicate::AttrCompare("W", CompareOp::kEq, "N");
  EXPECT_EQ(p.Bind(s).status().code(), StatusCode::kInvalidArgument);
  Predicate q = Predicate::Compare(Operand::Attr("W"), CompareOp::kEq,
                                   Operand::Const(Value("nope")));
  EXPECT_EQ(q.Bind(s).status().code(), StatusCode::kInvalidArgument);
}

TEST(PredicateTest, ReferencedAttributesDeduplicated) {
  Predicate p = Predicate::And(
      Predicate::AttrCompare("W", CompareOp::kEq, "X"),
      Predicate::AttrCompare("W", CompareOp::kLt, "Y"));
  std::vector<std::string> attrs = p.ReferencedAttributes();
  EXPECT_EQ(attrs.size(), 3u);
}

TEST(PredicateTest, TopLevelConjunctsSplitsAnds) {
  Predicate a = Predicate::AttrCompare("W", CompareOp::kEq, "X");
  Predicate b = Predicate::AttrCompare("X", CompareOp::kEq, "Y");
  Predicate c = Predicate::AttrCompare("Y", CompareOp::kLt, "Z");
  Predicate all = Predicate::And(Predicate::And(a, b), c);
  std::vector<Predicate> conjuncts = all.TopLevelConjuncts();
  ASSERT_EQ(conjuncts.size(), 3u);
  EXPECT_TRUE(conjuncts[0].AsComparison().has_value());
  EXPECT_EQ(conjuncts[0].AsComparison()->lhs.attr_name(), "W");
  EXPECT_EQ(conjuncts[2].AsComparison()->op, CompareOp::kLt);
}

TEST(PredicateTest, TopLevelConjunctsOfTrueIsEmpty) {
  EXPECT_TRUE(Predicate::True().TopLevelConjuncts().empty());
}

TEST(PredicateTest, OrIsNotSplitIntoConjuncts) {
  Predicate p = Predicate::Or(
      Predicate::AttrCompare("W", CompareOp::kEq, "X"),
      Predicate::AttrCompare("X", CompareOp::kEq, "Y"));
  EXPECT_EQ(p.TopLevelConjuncts().size(), 1u);
  EXPECT_FALSE(p.AsComparison().has_value());
}

TEST(PredicateTest, ToStringIsReadable) {
  Predicate p = Predicate::And(
      Predicate::AttrCompare("W", CompareOp::kGt, "Z"),
      Predicate::Compare(Operand::Attr("X"), CompareOp::kEq,
                         Operand::ConstInt(3)));
  EXPECT_EQ(p.ToString(), "(W > Z and X = 3)");
}

}  // namespace
}  // namespace wvm
