// Tests for the opt-in source query engine: the cross-query term cache
// with delta patching under updates, and snapshot-isolated parallel
// evaluation of query batches. The engine must never change an answer —
// only the accounting — so most tests here are differential against the
// plain serial no-caching source.
#include <atomic>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "common/thread_pool.h"
#include "core/eca.h"
#include "core/multi_view.h"
#include "query/compiled_plan.h"
#include "source/source.h"
#include "source/term_cache.h"
#include "test_util.h"
#include "workload/generator.h"

namespace wvm {
namespace {

// Force a multi-worker shared pool before anything touches it, so the
// parallel batch path runs even on single-core machines.
const bool kForceThreads = [] {
  setenv("WVM_THREADS", "4", /*overwrite=*/0);
  return true;
}();

struct EngineFixture {
  Workload workload;
  Source source;

  static EngineFixture Make(const SourceConfig& config, uint64_t seed = 42) {
    Random rng(seed);
    Result<Workload> w = MakeExample6Workload({100, 4}, &rng);
    EXPECT_TRUE(w.ok());
    Result<Source> source =
        Source::Create(w->initial, config, w->scenario1_indexes);
    EXPECT_TRUE(source.ok()) << source.status();
    return EngineFixture{std::move(*w), std::move(*source)};
  }
};

SourceConfig EngineOn() {
  SourceConfig config;
  config.term_cache.enabled = true;
  return config;
}

Query OneTermQuery(const Workload& w, const Update& u, uint64_t id) {
  auto t = Term::FromView(w.view).Substitute(u);
  EXPECT_TRUE(t.has_value());
  return Query(id, u.id, {*t});
}

void ExpectSameAnswer(const AnswerMessage& a, const AnswerMessage& b,
                      const std::string& label) {
  ASSERT_EQ(a.per_term.size(), b.per_term.size()) << label;
  for (size_t i = 0; i < a.per_term.size(); ++i) {
    EXPECT_EQ(a.per_term[i], b.per_term[i])
        << label << " term " << i << "\n  a: " << a.per_term[i].ToString()
        << "\n  b: " << b.per_term[i].ToString();
  }
}

TEST(SourceEngineTest, RepeatedQueryHitsWithoutPageReads) {
  EngineFixture f = EngineFixture::Make(EngineOn());
  const Update u = Update::Insert("r1", Tuple::Ints({42, 3}));
  Result<AnswerMessage> first = f.source.EvaluateQuery(OneTermQuery(
      f.workload, u, 1));
  ASSERT_TRUE(first.ok());
  const int64_t reads_after_fill = f.source.io_stats().page_reads;
  EXPECT_GT(reads_after_fill, 0);
  EXPECT_EQ(f.source.io_stats().term_cache_misses, 1);

  Result<AnswerMessage> second = f.source.EvaluateQuery(OneTermQuery(
      f.workload, u, 2));
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(f.source.io_stats().page_reads, reads_after_fill);
  EXPECT_EQ(f.source.io_stats().term_cache_hits, 1);
  ExpectSameAnswer(*first, *second, "hit vs fill");
}

TEST(SourceEngineTest, InsertAndDeleteOfSameTupleShareOneEntry) {
  // V<+t> and V<-t> have the same signature (signs fold out); the delete
  // substitution is a hit whose answer is the insert's negation.
  EngineFixture f = EngineFixture::Make(EngineOn());
  const Tuple t = Tuple::Ints({42, 3});
  Result<AnswerMessage> plus = f.source.EvaluateQuery(
      OneTermQuery(f.workload, Update::Insert("r1", t), 1));
  Result<AnswerMessage> minus = f.source.EvaluateQuery(
      OneTermQuery(f.workload, Update::Delete("r1", t), 2));
  ASSERT_TRUE(plus.ok());
  ASSERT_TRUE(minus.ok());
  EXPECT_EQ(f.source.io_stats().term_cache_hits, 1);
  EXPECT_EQ(f.source.io_stats().term_cache_misses, 1);
  ASSERT_EQ(minus->per_term.size(), 1u);
  EXPECT_EQ(minus->per_term[0], plus->per_term[0].Negated());
}

TEST(SourceEngineTest, CacheSubsumesWithinQueryTermOptimization) {
  // Three structurally identical terms in ONE query: the first fills, the
  // other two hit the just-filled entry — same 5 reads the optimize_terms
  // flag achieves (1 + J for this plan), without the flag.
  EngineFixture f = EngineFixture::Make(EngineOn());
  Term t = *Term::FromView(f.workload.view)
                .Substitute(Update::Insert("r1", Tuple::Ints({42, 3})));
  Term neg = t.Negated();
  ASSERT_TRUE(f.source.EvaluateQuery(Query(1, 3, {t, neg, t})).ok());
  EXPECT_EQ(f.source.io_stats().page_reads, 5);
  EXPECT_EQ(f.source.io_stats().term_cache_hits, 2);
  EXPECT_EQ(f.source.io_stats().term_cache_misses, 1);
}

TEST(SourceEngineTest, UpdatePatchesAffectedEntries) {
  EngineFixture on = EngineFixture::Make(EngineOn());
  EngineFixture off = EngineFixture::Make(SourceConfig());

  // Fill: term bound on r1, unbound r2 and r3.
  const Update bound = Update::Insert("r1", Tuple::Ints({42, 3}));
  ASSERT_TRUE(on.source.EvaluateQuery(OneTermQuery(on.workload, bound, 1))
                  .ok());
  const int64_t reads_after_fill = on.source.io_stats().page_reads;

  // Updates to the unbound relations must patch the entry in place — one
  // joining insert, one joining delete of an existing tuple (X=3 joins the
  // bound tuple's X; {3, 0} exists in the generated r2: X = t % 25,
  // Y = (t/4) % 25, t = 3).
  const std::vector<Update> updates = {
      Update::Insert("r2", Tuple::Ints({3, 7})),
      Update::Delete("r2", Tuple::Ints({3, 0})),
      Update::Insert("r3", Tuple::Ints({7, 1})),
  };
  for (const Update& u : updates) {
    ASSERT_TRUE(on.source.ExecuteUpdate(u).ok()) << u.ToString();
    ASSERT_TRUE(off.source.ExecuteUpdate(u).ok());
  }
  EXPECT_EQ(on.source.io_stats().term_cache_patches, 3);
  EXPECT_EQ(on.source.io_stats().term_cache_evictions, 0);
  EXPECT_GT(on.source.io_stats().term_cache_patch_reads, 0);
  // Patch reads are maintenance I/O, not the paper's query page reads.
  EXPECT_EQ(on.source.io_stats().page_reads, reads_after_fill);

  // The patched entry answers the re-query exactly as a fresh evaluation
  // over the post-update storage does — with zero additional page reads.
  Result<AnswerMessage> cached =
      on.source.EvaluateQuery(OneTermQuery(on.workload, bound, 2));
  Result<AnswerMessage> fresh =
      off.source.EvaluateQuery(OneTermQuery(off.workload, bound, 2));
  ASSERT_TRUE(cached.ok());
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(on.source.io_stats().page_reads, reads_after_fill);
  EXPECT_EQ(on.source.io_stats().term_cache_hits, 1);
  ExpectSameAnswer(*cached, *fresh, "patched vs fresh");
}

TEST(SourceEngineTest, UpdateToBoundRelationLeavesEntryIntact) {
  // The term binds r1's position, so its answer does not depend on r1's
  // stored contents: an r1 update neither patches nor evicts.
  EngineFixture f = EngineFixture::Make(EngineOn());
  const Update bound = Update::Insert("r1", Tuple::Ints({42, 3}));
  Result<AnswerMessage> before =
      f.source.EvaluateQuery(OneTermQuery(f.workload, bound, 1));
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE(
      f.source.ExecuteUpdate(Update::Insert("r1", Tuple::Ints({9, 3})))
          .ok());
  EXPECT_EQ(f.source.io_stats().term_cache_patches, 0);
  EXPECT_EQ(f.source.io_stats().term_cache_evictions, 0);
  Result<AnswerMessage> after =
      f.source.EvaluateQuery(OneTermQuery(f.workload, bound, 2));
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(f.source.io_stats().term_cache_hits, 1);
  ExpectSameAnswer(*before, *after, "bound-relation update");
}

TEST(SourceEngineTest, CostlyPatchesEvictInstead) {
  SourceConfig config = EngineOn();
  config.term_cache.patch_cost_factor = 1e9;  // any patch looks too dear
  EngineFixture on = EngineFixture::Make(config);
  EngineFixture off = EngineFixture::Make(SourceConfig());

  const Update bound = Update::Insert("r1", Tuple::Ints({42, 3}));
  ASSERT_TRUE(on.source.EvaluateQuery(OneTermQuery(on.workload, bound, 1))
                  .ok());
  ASSERT_NE(on.source.term_cache(), nullptr);
  EXPECT_EQ(on.source.term_cache()->size(), 1u);

  const Update u = Update::Insert("r2", Tuple::Ints({3, 7}));
  ASSERT_TRUE(on.source.ExecuteUpdate(u).ok());
  ASSERT_TRUE(off.source.ExecuteUpdate(u).ok());
  EXPECT_EQ(on.source.io_stats().term_cache_patches, 0);
  EXPECT_EQ(on.source.io_stats().term_cache_evictions, 1);
  EXPECT_EQ(on.source.term_cache()->size(), 0u);

  // Re-query misses and recomputes — still the right answer.
  Result<AnswerMessage> recomputed =
      on.source.EvaluateQuery(OneTermQuery(on.workload, bound, 2));
  Result<AnswerMessage> fresh =
      off.source.EvaluateQuery(OneTermQuery(off.workload, bound, 2));
  ASSERT_TRUE(recomputed.ok());
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(on.source.io_stats().term_cache_misses, 2);
  ExpectSameAnswer(*recomputed, *fresh, "post-eviction");
}

TEST(SourceEngineTest, LruBoundsCacheSize) {
  SourceConfig config = EngineOn();
  config.term_cache.capacity = 2;
  EngineFixture f = EngineFixture::Make(config);
  for (int64_t w = 0; w < 4; ++w) {
    const Update u = Update::Insert("r1", Tuple::Ints({w, 3}));
    ASSERT_TRUE(
        f.source.EvaluateQuery(OneTermQuery(f.workload, u, w + 1)).ok());
  }
  ASSERT_NE(f.source.term_cache(), nullptr);
  EXPECT_EQ(f.source.term_cache()->size(), 2u);
  EXPECT_EQ(f.source.io_stats().term_cache_evictions, 2);
  EXPECT_EQ(f.source.io_stats().term_cache_misses, 4);
}

// Whole-simulation differential: with the engine on, every algorithm must
// converge to the same warehouse view as the plain source — across churn,
// delete-heavy, and randomized schedules, worst-case and random orders.
TEST(SourceEngineTest, SimulationsConvergeIdenticallyWithEngineOn) {
  for (uint64_t seed : {3u, 11u}) {
    Random rng(seed);
    Result<Workload> w = MakeExample6Workload({60, 4}, &rng);
    ASSERT_TRUE(w.ok());
    std::vector<std::vector<Update>> schedules;
    {
      Result<std::vector<Update>> churn = MakeChurnUpdates(*w, 18, 3, &rng);
      ASSERT_TRUE(churn.ok());
      schedules.push_back(*std::move(churn));
      Result<std::vector<Update>> heavy = MakeMixedUpdates(*w, 18, 0.7, &rng);
      ASSERT_TRUE(heavy.ok());
      schedules.push_back(*std::move(heavy));
    }
    for (size_t s = 0; s < schedules.size(); ++s) {
      for (Algorithm algorithm : {Algorithm::kEca, Algorithm::kLca}) {
        auto run = [&](bool engine) {
          SimulationOptions options;
          options.indexes = w->scenario1_indexes;
          options.term_cache.enabled = engine;
          options.engine.parallel_answers = engine;
          std::unique_ptr<Simulation> sim =
              MustMakeSim(w->initial, w->view, algorithm, options);
          sim->SetUpdateScript(schedules[s]);
          WorstCasePolicy policy;
          EXPECT_TRUE(RunToQuiescence(sim.get(), &policy).ok());
          ConsistencyReport report = CheckConsistency(sim->state_log());
          EXPECT_TRUE(report.convergent)
              << "seed " << seed << " schedule " << s;
          return std::pair<Relation, int64_t>(sim->warehouse_view(),
                                              sim->io_stats().page_reads);
        };
        auto [view_off, io_off] = run(false);
        auto [view_on, io_on] = run(true);
        EXPECT_EQ(view_off, view_on)
            << "seed " << seed << " schedule " << s << " algorithm "
            << AlgorithmName(algorithm);
        EXPECT_LE(io_on, io_off);  // hits can only remove page reads
      }
    }
  }
}

// --- Auxiliary-view promotion (TermCacheConfig::promote) --------------------

// Two structurally identical views owned by different objects, querying the
// same source: the regime where a shared subexpression is hot ACROSS views
// and promotion pays.
struct AuxFixture {
  Catalog initial;
  ViewDefinitionPtr va;
  ViewDefinitionPtr vb;
  Source source;

  static AuxFixture Make(const SourceConfig& config) {
    Schema s1 = Schema::Ints({"W", "X"});
    Schema s2 = Schema::Ints({"X", "Y"});
    Relation r1(s1);
    Relation r2(s2);
    for (int64_t t = 0; t < 20; ++t) {
      r1.Insert(Tuple::Ints({t, t % 4}));
      r2.Insert(Tuple::Ints({t % 4, t}));
    }
    Catalog initial;
    EXPECT_TRUE(initial.DefineWithData({"r1", s1}, std::move(r1)).ok());
    EXPECT_TRUE(initial.DefineWithData({"r2", s2}, std::move(r2)).ok());
    ViewDefinitionPtr va =
        *ViewDefinition::NaturalJoin("VA", {{"r1", s1}, {"r2", s2}}, {"W"});
    ViewDefinitionPtr vb =
        *ViewDefinition::NaturalJoin("VB", {{"r1", s1}, {"r2", s2}}, {"W"});
    Result<Source> source = Source::Create(initial, config, {});
    EXPECT_TRUE(source.ok()) << source.status();
    return AuxFixture{std::move(initial), std::move(va), std::move(vb),
                      std::move(*source)};
  }
};

SourceConfig PromoteOn() {
  SourceConfig config;
  config.term_cache.enabled = true;
  config.term_cache.promote = true;
  config.term_cache.promote_min_hits = 3;
  config.term_cache.promote_min_views = 2;
  config.term_cache.demote_after_updates = 3;
  return config;
}

Query ViewTermQuery(const ViewDefinitionPtr& view, const Update& u,
                    uint64_t id) {
  auto t = Term::FromView(view).Substitute(u);
  EXPECT_TRUE(t.has_value());
  return Query(id, u.id, {*t});
}

TEST(AuxViewTest, HotCrossViewTermPromotesIntoAuxCatalog) {
  AuxFixture f = AuxFixture::Make(PromoteOn());
  const Update u = Update::Insert("r1", Tuple::Ints({50, 1}));
  // VA fills; alternating VA/VB hits accumulate cross-view stats. The
  // third hit satisfies hits >= 3 from >= 2 distinct views with zero patch
  // cost, so the entry graduates.
  Result<AnswerMessage> first =
      f.source.EvaluateQuery(ViewTermQuery(f.va, u, 1));
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(f.source.EvaluateQuery(ViewTermQuery(f.vb, u, 2)).ok());
  ASSERT_TRUE(f.source.EvaluateQuery(ViewTermQuery(f.va, u, 3)).ok());
  EXPECT_EQ(f.source.io_stats().term_cache_promotions, 0);
  ASSERT_TRUE(f.source.EvaluateQuery(ViewTermQuery(f.vb, u, 4)).ok());
  EXPECT_EQ(f.source.io_stats().term_cache_promotions, 1);
  ASSERT_NE(f.source.term_cache(), nullptr);
  EXPECT_EQ(f.source.term_cache()->promoted_count(), 1u);
  EXPECT_TRUE(f.source.term_cache()->aux_catalog().Get("aux1").ok());

  // Serving from the promoted (pinned) entry is metered as an aux hit and
  // still answers exactly.
  Result<AnswerMessage> served =
      f.source.EvaluateQuery(ViewTermQuery(f.vb, u, 5));
  ASSERT_TRUE(served.ok());
  EXPECT_EQ(f.source.io_stats().term_cache_aux_hits, 1);
  ExpectSameAnswer(*served, *first, "aux-served vs fill");
}

TEST(AuxViewTest, PromotedEntriesArePinnedAgainstLruPressure) {
  SourceConfig config = PromoteOn();
  config.term_cache.capacity = 2;
  AuxFixture f = AuxFixture::Make(config);
  const Update hot = Update::Insert("r1", Tuple::Ints({50, 1}));
  uint64_t id = 1;
  ASSERT_TRUE(f.source.EvaluateQuery(ViewTermQuery(f.va, hot, id++)).ok());
  ASSERT_TRUE(f.source.EvaluateQuery(ViewTermQuery(f.vb, hot, id++)).ok());
  ASSERT_TRUE(f.source.EvaluateQuery(ViewTermQuery(f.va, hot, id++)).ok());
  ASSERT_TRUE(f.source.EvaluateQuery(ViewTermQuery(f.vb, hot, id++)).ok());
  ASSERT_EQ(f.source.term_cache()->promoted_count(), 1u);
  // Churn far more distinct shapes than the capacity: the LRU evicts among
  // the plain entries only, never the promoted one.
  for (int64_t w = 0; w < 6; ++w) {
    const Update cold = Update::Insert("r1", Tuple::Ints({60 + w, 2}));
    ASSERT_TRUE(f.source.EvaluateQuery(ViewTermQuery(f.va, cold, id++)).ok());
  }
  EXPECT_EQ(f.source.term_cache()->promoted_count(), 1u);
  EXPECT_EQ(f.source.term_cache()->size(), 3u);  // promoted + 2 LRU slots
  // The hot entry still serves.
  ASSERT_TRUE(f.source.EvaluateQuery(ViewTermQuery(f.vb, hot, id++)).ok());
  EXPECT_GE(f.source.io_stats().term_cache_aux_hits, 1);
}

TEST(AuxViewTest, ColdPromotedEntryDemotesAndUnregisters) {
  ScopedCompiledPlans plans(true);
  AuxFixture f = AuxFixture::Make(PromoteOn());
  AuxFixture plain = AuxFixture::Make(SourceConfig());
  const Update u = Update::Insert("r1", Tuple::Ints({50, 1}));
  for (uint64_t id = 1; id <= 4; ++id) {
    ASSERT_TRUE(f.source
                    .EvaluateQuery(ViewTermQuery(id % 2 ? f.va : f.vb, u, id))
                    .ok());
  }
  ASSERT_EQ(f.source.term_cache()->promoted_count(), 1u);

  // Patch the promoted view through demote_after_updates = 3 consecutive
  // updates with no intervening hit; the 4th patching update finds it cold
  // and demotes it back to a plain LRU entry, unregistering the aux view.
  for (int64_t i = 0; i < 4; ++i) {
    const Update w = Update::Insert("r2", Tuple::Ints({1, 100 + i}));
    ASSERT_TRUE(f.source.ExecuteUpdate(w).ok());
    ASSERT_TRUE(plain.source.ExecuteUpdate(w).ok());
  }
  EXPECT_EQ(f.source.io_stats().term_cache_demotions, 1);
  EXPECT_EQ(f.source.term_cache()->promoted_count(), 0u);
  EXPECT_FALSE(f.source.term_cache()->aux_catalog().Get("aux1").ok());

  // Through promotion, patched maintenance, and demotion, the answer is
  // still exactly the plain source's.
  Result<AnswerMessage> cached =
      f.source.EvaluateQuery(ViewTermQuery(f.va, u, 9));
  Result<AnswerMessage> fresh =
      plain.source.EvaluateQuery(ViewTermQuery(plain.va, u, 9));
  ASSERT_TRUE(cached.ok());
  ASSERT_TRUE(fresh.ok());
  ExpectSameAnswer(*cached, *fresh, "post-demotion");
}

TEST(AuxViewTest, PromotedAnswersMatchPlainSourceUnderChurn) {
  // Differential under interleaved updates and cross-view queries: the
  // promoted entry is maintained by compiled delta plans, and every answer
  // must match the no-caching source bit for bit.
  ScopedCompiledPlans plans(true);
  SourceConfig config = PromoteOn();
  config.term_cache.demote_after_updates = 64;  // keep it promoted
  AuxFixture on = AuxFixture::Make(config);
  AuxFixture off = AuxFixture::Make(SourceConfig());
  const Update hot = Update::Insert("r1", Tuple::Ints({50, 1}));
  uint64_t id = 1;
  for (int64_t round = 0; round < 8; ++round) {
    // r2 holds (t%4, t), so the live X=1 tuples are (1, 4i+1); churn those
    // for the first rounds, then recycle this loop's own earlier inserts.
    const int64_t victim = round < 5 ? 4 * round + 1 : 200 + (round - 5);
    const std::vector<Update> updates = {
        Update::Insert("r2", Tuple::Ints({1, 200 + round})),
        Update::Delete("r2", Tuple::Ints({1, victim})),
    };
    for (const Update& w : updates) {
      ASSERT_TRUE(on.source.ExecuteUpdate(w).ok()) << w.ToString();
      ASSERT_TRUE(off.source.ExecuteUpdate(w).ok());
    }
    Result<AnswerMessage> a =
        on.source.EvaluateQuery(ViewTermQuery(round % 2 ? on.va : on.vb, hot,
                                              id));
    Result<AnswerMessage> b = off.source.EvaluateQuery(
        ViewTermQuery(round % 2 ? off.va : off.vb, hot, id));
    ++id;
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    ExpectSameAnswer(*a, *b, "round " + std::to_string(round));
  }
  EXPECT_EQ(on.source.io_stats().term_cache_promotions, 1);
  EXPECT_EQ(on.source.io_stats().term_cache_demotions, 0);
  EXPECT_GT(on.source.io_stats().term_cache_aux_hits, 0);
}

TEST(AuxViewTest, PerEntryPatchAccountingEvictsUnreadEntries) {
  // Satellite of the cost-based selector: patch I/O is charged against the
  // entry that was patched, so an entry that is all maintenance and no
  // reuse is evicted on ITS OWN accrued cost, while an entry whose hits
  // keep resetting its window survives the same update stream.
  EngineFixture f = EngineFixture::Make(EngineOn());
  const Update kept_u = Update::Insert("r1", Tuple::Ints({42, 3}));
  const Update dropped_u = Update::Insert("r1", Tuple::Ints({43, 3}));
  ASSERT_TRUE(
      f.source.EvaluateQuery(OneTermQuery(f.workload, kept_u, 1)).ok());
  ASSERT_TRUE(
      f.source.EvaluateQuery(OneTermQuery(f.workload, dropped_u, 2)).ok());
  ASSERT_EQ(f.source.term_cache()->size(), 2u);
  uint64_t id = 3;
  for (int64_t i = 0; i < 8; ++i) {
    // Joining r2 inserts patch both entries (X = 3 matches both bound
    // tuples); only the kept entry is re-read between updates.
    ASSERT_TRUE(f.source
                    .ExecuteUpdate(Update::Insert("r2",
                                                  Tuple::Ints({3, 100 + i})))
                    .ok());
    ASSERT_TRUE(
        f.source.EvaluateQuery(OneTermQuery(f.workload, kept_u, id++)).ok());
  }
  EXPECT_GE(f.source.io_stats().term_cache_evictions, 1);
  EXPECT_EQ(f.source.term_cache()->size(), 1u);
  // The kept entry is still cached (hit), the dropped one recomputes.
  const int64_t hits_before = f.source.io_stats().term_cache_hits;
  ASSERT_TRUE(
      f.source.EvaluateQuery(OneTermQuery(f.workload, kept_u, id++)).ok());
  EXPECT_EQ(f.source.io_stats().term_cache_hits, hits_before + 1);
  const int64_t misses_before = f.source.io_stats().term_cache_misses;
  ASSERT_TRUE(
      f.source.EvaluateQuery(OneTermQuery(f.workload, dropped_u, id++)).ok());
  EXPECT_EQ(f.source.io_stats().term_cache_misses, misses_before + 1);
}

TEST(AuxViewTest, MultiViewSimulationConvergesWithPromotionOn) {
  // End to end: two structurally identical children querying through one
  // warehouse, churn updates repeating term shapes, promotion enabled at
  // the source. Views stay correct and the shared subexpression promotes.
  Schema s1 = Schema::Ints({"W", "X"});
  Schema s2 = Schema::Ints({"X", "Y"});
  Schema s3 = Schema::Ints({"Y", "Z"});
  Catalog initial;
  Relation r1(s1), r2(s2), r3(s3);
  for (int64_t t = 0; t < 12; ++t) {
    r1.Insert(Tuple::Ints({t, t % 3}));
    r2.Insert(Tuple::Ints({t % 3, t}));
    r3.Insert(Tuple::Ints({t, t % 3}));
  }
  ASSERT_TRUE(initial.DefineWithData({"r1", s1}, std::move(r1)).ok());
  ASSERT_TRUE(initial.DefineWithData({"r2", s2}, std::move(r2)).ok());
  ASSERT_TRUE(initial.DefineWithData({"r3", s3}, std::move(r3)).ok());
  ViewDefinitionPtr va =
      *ViewDefinition::NaturalJoin("VA", {{"r1", s1}, {"r2", s2}}, {"W"});
  ViewDefinitionPtr vb =
      *ViewDefinition::NaturalJoin("VB", {{"r1", s1}, {"r2", s2}}, {"W"});

  std::vector<std::unique_ptr<ViewMaintainer>> children;
  children.push_back(std::make_unique<Eca>(va));
  children.push_back(std::make_unique<Eca>(vb));
  auto multi_owner =
      std::make_unique<MultiViewWarehouse>(std::move(children));
  MultiViewWarehouse* multi = multi_owner.get();
  SimulationOptions options;
  options.term_cache = PromoteOn().term_cache;
  Result<std::unique_ptr<Simulation>> sim = Simulation::Create(
      initial, va, std::move(multi_owner), options);
  ASSERT_TRUE(sim.ok()) << sim.status();
  // Churn a hot r1 tuple so both children keep asking for the same shape.
  std::vector<Update> script;
  for (int i = 0; i < 6; ++i) {
    script.push_back(i % 2 == 0 ? Update::Insert("r1", Tuple::Ints({50, 1}))
                                : Update::Delete("r1", Tuple::Ints({50, 1})));
  }
  (*sim)->SetUpdateScript(script);
  RandomPolicy policy(23);
  ASSERT_TRUE(RunToQuiescence(sim->get(), &policy).ok());
  Result<Relation> expected = EvaluateView(va, (*sim)->source_catalog());
  ASSERT_TRUE(expected.ok());
  EXPECT_EQ(multi->child(0).view_contents(), *expected);
  EXPECT_EQ(multi->child(1).view_contents(), *expected);
  EXPECT_GT((*sim)->io_stats().term_cache_promotions, 0);
}

TEST(SourceEngineThreadedTest, ParallelBatchMatchesSerialMetersExactly) {
  ASSERT_TRUE(kForceThreads);
  ASSERT_GE(ThreadPool::Shared().num_threads(), 2u);
  SourceConfig parallel_config;
  parallel_config.parallel_batch = true;
  EngineFixture parallel = EngineFixture::Make(parallel_config);
  EngineFixture serial = EngineFixture::Make(SourceConfig());

  std::vector<Query> queries;
  for (int64_t i = 0; i < 6; ++i) {
    // Multi-term compensating-style queries over all three relations,
    // including delete-substituted (negative-sign) terms.
    Term a = *Term::FromView(parallel.workload.view)
                  .Substitute(Update::Insert("r1", Tuple::Ints({i, 3})));
    Term b = *Term::FromView(parallel.workload.view)
                  .Substitute(Update::Delete("r2", Tuple::Ints({3, i})));
    b.set_coefficient(-1);
    Term c = *Term::FromView(parallel.workload.view)
                  .Substitute(Update::Insert("r3", Tuple::Ints({i, 9})));
    queries.push_back(Query(i + 1, 1, {a, b, c}));
  }

  Result<std::vector<AnswerMessage>> fanned =
      parallel.source.EvaluateQueryBatch(queries);
  ASSERT_TRUE(fanned.ok()) << fanned.status();
  std::vector<AnswerMessage> reference;
  for (const Query& q : queries) {
    Result<AnswerMessage> a = serial.source.EvaluateQuery(q);
    ASSERT_TRUE(a.ok());
    reference.push_back(*std::move(a));
  }

  ASSERT_EQ(fanned->size(), reference.size());
  for (size_t i = 0; i < reference.size(); ++i) {
    ExpectSameAnswer((*fanned)[i], reference[i],
                     "query " + std::to_string(i));
  }
  // With the term cache off, per-query meters merged in query order must
  // reproduce the serial counters bit-for-bit.
  EXPECT_EQ(parallel.source.io_stats().page_reads,
            serial.source.io_stats().page_reads);
  EXPECT_EQ(parallel.source.io_stats().index_probes,
            serial.source.io_stats().index_probes);
  EXPECT_EQ(parallel.source.io_stats().full_scans,
            serial.source.io_stats().full_scans);
  EXPECT_EQ(parallel.source.io_stats().terms_evaluated,
            serial.source.io_stats().terms_evaluated);
}

TEST(SourceEngineThreadedTest, ParallelBatchWithCacheMatchesSerialAnswers) {
  ASSERT_TRUE(kForceThreads);
  SourceConfig engine = EngineOn();
  engine.parallel_batch = true;
  EngineFixture on = EngineFixture::Make(engine);
  EngineFixture off = EngineFixture::Make(SourceConfig());

  // Repeated shapes across the batch: racing fills must agree, and answers
  // must match the plain source regardless of hit/miss attribution.
  std::vector<Query> queries;
  for (int64_t i = 0; i < 8; ++i) {
    Term a = *Term::FromView(on.workload.view)
                  .Substitute(Update::Insert("r1", Tuple::Ints({i % 3, 3})));
    Term b = *Term::FromView(on.workload.view)
                  .Substitute(Update::Delete("r1", Tuple::Ints({i % 3, 3})));
    queries.push_back(Query(i + 1, 1, {a, b}));
  }
  Result<std::vector<AnswerMessage>> fanned =
      on.source.EvaluateQueryBatch(queries);
  ASSERT_TRUE(fanned.ok());
  for (size_t i = 0; i < queries.size(); ++i) {
    Result<AnswerMessage> expected = off.source.EvaluateQuery(queries[i]);
    ASSERT_TRUE(expected.ok());
    ExpectSameAnswer((*fanned)[i], *expected, "query " + std::to_string(i));
  }
  // Whatever the schedule, every term either hit or missed.
  EXPECT_EQ(on.source.io_stats().term_cache_hits +
                on.source.io_stats().term_cache_misses,
            static_cast<int64_t>(queries.size() * 2));
}

TEST(SourceEngineThreadedTest, SnapshotsAreIsolatedFromConcurrentUpdates) {
  ASSERT_TRUE(kForceThreads);
  EngineFixture f = EngineFixture::Make(SourceConfig());
  const StorageMap snapshot = f.source.SnapshotStorage();
  std::vector<size_t> baseline;
  for (const auto& [name, sr] : snapshot) {
    baseline.push_back(sr.NumRows());
  }

  // Readers scan and probe the snapshot while the main thread executes
  // updates against the head storage (the batch evaluator's exact access
  // pattern; TSan must see no race).
  std::atomic<bool> stop{false};
  std::atomic<int64_t> scans{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&snapshot, &stop, &scans] {
      // do-while: even if the writer finishes before this thread is first
      // scheduled, every reader still completes at least one full pass.
      do {
        for (const auto& [name, sr] : snapshot) {
          IOStats io;
          (void)sr.FullScan(&io);
          (void)sr.EstimatedMatchesPerKey("X");
        }
        scans.fetch_add(1);
      } while (!stop.load());
    });
  }
  for (int64_t i = 0; i < 200; ++i) {
    ASSERT_TRUE(
        f.source.ExecuteUpdate(Update::Insert("r1", Tuple::Ints({i, 3})))
            .ok());
    if (i % 2 == 0) {
      ASSERT_TRUE(
          f.source.ExecuteUpdate(Update::Delete("r1", Tuple::Ints({i, 3})))
              .ok());
    }
  }
  stop.store(true);
  for (std::thread& t : readers) {
    t.join();
  }
  EXPECT_GE(scans.load(), 3);

  // The snapshot never moved; the head did.
  size_t i = 0;
  for (const auto& [name, sr] : snapshot) {
    EXPECT_EQ(sr.NumRows(), baseline[i++]) << name;
  }
  EXPECT_EQ(f.source.storage().at("r1").NumRows(), baseline[0] + 100);
}

}  // namespace
}  // namespace wvm
