// Behavioral tests for ECA-Key beyond the Example 5 replay: locality of
// deletes, duplicate suppression, inapplicability errors, and the
// self-key-delete corner the Appendix C sketch glosses over.
#include "core/eca_key.h"

#include <gtest/gtest.h>

#include "test_util.h"
#include "workload/generator.h"

namespace wvm {
namespace {

struct KeyedFixture {
  Workload workload;

  static KeyedFixture Make(int64_t c = 12, int64_t j = 3) {
    Random rng(7);
    Result<Workload> w = MakeKeyedWorkload({c, j}, &rng);
    EXPECT_TRUE(w.ok());
    return KeyedFixture{std::move(*w)};
  }
};

TEST(EcaKeyTest, InapplicableWithoutKeysInView) {
  Result<PaperExample> ex = MakePaperExample2();  // unkeyed schemas
  ASSERT_TRUE(ex.ok());
  EcaKey maintainer(ex->view);
  EXPECT_EQ(maintainer.Initialize(ex->initial).code(),
            StatusCode::kFailedPrecondition);
}

TEST(EcaKeyTest, DeletesNeverQueryTheSource) {
  KeyedFixture f = KeyedFixture::Make();
  std::unique_ptr<Simulation> sim =
      MustMakeSim(f.workload.initial, f.workload.view, Algorithm::kEcaKey);
  sim->SetUpdateScript({Update::Delete("r1", Tuple::Ints({0, 0})),
                        Update::Delete("r2", Tuple::Ints({0, 0}))});
  BestCasePolicy policy;
  ASSERT_TRUE(RunToQuiescence(sim.get(), &policy).ok());
  EXPECT_EQ(sim->meter().query_messages(), 0);
  Result<Relation> expected = sim->SourceViewNow();
  ASSERT_TRUE(expected.ok());
  EXPECT_EQ(sim->warehouse_view(), *expected);
}

TEST(EcaKeyTest, InsertQueriesCarryNoCompensation) {
  // Two concurrent inserts: both queries must stay single-term.
  KeyedFixture f = KeyedFixture::Make();
  std::unique_ptr<Simulation> sim =
      MustMakeSim(f.workload.initial, f.workload.view, Algorithm::kEcaKey);
  sim->SetUpdateScript({Update::Insert("r1", Tuple::Ints({50, 1})),
                        Update::Insert("r1", Tuple::Ints({51, 1}))});
  WorstCasePolicy policy;
  ASSERT_TRUE(RunToQuiescence(sim.get(), &policy).ok());
  EXPECT_EQ(sim->meter().query_messages(), 2);
  EXPECT_EQ(sim->meter().query_terms(), 2);  // 1 term each, unlike ECA
  Result<Relation> expected = sim->SourceViewNow();
  ASSERT_TRUE(expected.ok());
  EXPECT_EQ(sim->warehouse_view(), *expected);
}

TEST(EcaKeyTest, DuplicateAnswerTuplesSuppressed) {
  // Insert r1 tuple then insert a joining r2 tuple: the r1 query evaluated
  // late sees the new r2 tuple too, producing the same view tuple as the
  // r2 query — it must be added once.
  KeyedFixture f = KeyedFixture::Make();
  std::unique_ptr<Simulation> sim =
      MustMakeSim(f.workload.initial, f.workload.view, Algorithm::kEcaKey);
  sim->SetUpdateScript({Update::Insert("r1", Tuple::Ints({50, 9})),
                        Update::Insert("r2", Tuple::Ints({9, 60}))});
  WorstCasePolicy policy;
  ASSERT_TRUE(RunToQuiescence(sim.get(), &policy).ok());
  Result<Relation> expected = sim->SourceViewNow();
  ASSERT_TRUE(expected.ok());
  EXPECT_EQ(sim->warehouse_view(), *expected);
  EXPECT_EQ(sim->warehouse_view().CountOf(Tuple::Ints({50, 60})), 1);
}

TEST(EcaKeyTest, InsertThenDeleteOfSameTupleLeavesNoZombie) {
  // The corner the Appendix C sketch misses: the delete removes the very
  // tuple the pending insert query binds, so the late answer re-offers the
  // deleted key and must be suppressed via the key-delete log.
  KeyedFixture f = KeyedFixture::Make();
  std::unique_ptr<Simulation> sim =
      MustMakeSim(f.workload.initial, f.workload.view, Algorithm::kEcaKey);
  sim->SetUpdateScript({Update::Insert("r1", Tuple::Ints({50, 1})),
                        Update::Delete("r1", Tuple::Ints({50, 1}))});
  // Adversarial order: both updates reach the warehouse before the insert
  // query is answered.
  WorstCasePolicy policy;
  ASSERT_TRUE(RunToQuiescence(sim.get(), &policy).ok());
  Result<Relation> expected = sim->SourceViewNow();
  ASSERT_TRUE(expected.ok());
  EXPECT_EQ(sim->warehouse_view(), *expected);
  // No [50, *] tuples survive.
  for (const auto& [t, c] : sim->warehouse_view().entries()) {
    (void)c;
    EXPECT_NE(t.value(0), Value(int64_t{50})) << t.ToString();
  }
}

TEST(EcaKeyTest, ReinsertedKeyAfterDeleteSurvives) {
  // Delete key 3, then insert a new tuple with key 30 joining the same X:
  // suppression must not eat legitimately newer tuples.
  KeyedFixture f = KeyedFixture::Make();
  std::unique_ptr<Simulation> sim =
      MustMakeSim(f.workload.initial, f.workload.view, Algorithm::kEcaKey);
  sim->SetUpdateScript({Update::Insert("r1", Tuple::Ints({50, 2})),
                        Update::Delete("r1", Tuple::Ints({50, 2})),
                        Update::Insert("r1", Tuple::Ints({51, 2}))});
  WorstCasePolicy policy;
  ASSERT_TRUE(RunToQuiescence(sim.get(), &policy).ok());
  Result<Relation> expected = sim->SourceViewNow();
  ASSERT_TRUE(expected.ok());
  EXPECT_EQ(sim->warehouse_view(), *expected);
  // Key 51 joined J tuples and is present.
  int64_t with_51 = 0;
  for (const auto& [t, c] : sim->warehouse_view().entries()) {
    (void)c;
    if (t.value(0) == Value(int64_t{51})) {
      ++with_51;
    }
  }
  EXPECT_GT(with_51, 0);
}

TEST(EcaKeyTest, ViewInstalledOnlyWhenUqsEmpty) {
  KeyedFixture f = KeyedFixture::Make();
  auto maintainer = std::make_unique<EcaKey>(f.workload.view);
  EcaKey* eca_key = maintainer.get();
  Result<std::unique_ptr<Simulation>> sim =
      Simulation::Create(f.workload.initial, f.workload.view,
                         std::move(maintainer), SimulationOptions());
  ASSERT_TRUE(sim.ok());
  (*sim)->SetUpdateScript({Update::Insert("r1", Tuple::Ints({50, 1})),
                           Update::Delete("r2", Tuple::Ints({0, 0}))});
  // Insert processed, query pending.
  ASSERT_TRUE((*sim)->StepSourceUpdate().ok());
  ASSERT_TRUE((*sim)->StepWarehouse().ok());
  // Delete processed locally while the query is pending: COLLECT moves,
  // MV must not.
  ASSERT_TRUE((*sim)->StepSourceUpdate().ok());
  ASSERT_TRUE((*sim)->StepWarehouse().ok());
  EXPECT_NE(eca_key->collect(), (*sim)->warehouse_view());
  // Answer arrives: install.
  ASSERT_TRUE((*sim)->StepSourceAnswer().ok());
  ASSERT_TRUE((*sim)->StepWarehouse().ok());
  EXPECT_EQ(eca_key->collect(), (*sim)->warehouse_view());
  Result<Relation> expected = (*sim)->SourceViewNow();
  ASSERT_TRUE(expected.ok());
  EXPECT_EQ((*sim)->warehouse_view(), *expected);
}

}  // namespace
}  // namespace wvm
