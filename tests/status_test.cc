#include "common/status.h"

#include <gtest/gtest.h>

#include "common/result.h"

namespace wvm {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "ok");
}

TEST(StatusTest, FactoryConstructorsSetCodeAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::NotFound("it is gone").message(), "it is gone");
}

TEST(StatusTest, ToStringIncludesCodeNameAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("bad schema").ToString(),
            "invalid argument: bad schema");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

Status FailsIfNegative(int x) {
  if (x < 0) {
    return Status::InvalidArgument("negative");
  }
  return Status::OK();
}

Status Chained(int x) {
  WVM_RETURN_IF_ERROR(FailsIfNegative(x));
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(Chained(1).ok());
  EXPECT_EQ(Chained(-1).code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nothing"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, ValueOrReturnsValueWhenOk) {
  Result<int> r(7);
  EXPECT_EQ(r.value_or(-1), 7);
}

Result<int> Doubled(int x) {
  if (x < 0) {
    return Status::OutOfRange("no");
  }
  return 2 * x;
}

Result<int> UsesAssignOrReturn(int x) {
  WVM_ASSIGN_OR_RETURN(int d, Doubled(x));
  return d + 1;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  Result<int> ok = UsesAssignOrReturn(3);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 7);
  Result<int> bad = UsesAssignOrReturn(-3);
  EXPECT_EQ(bad.status().code(), StatusCode::kOutOfRange);
}

TEST(ResultTest, MoveOnlyValueWorks) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(5));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 5);
}

}  // namespace
}  // namespace wvm
