// The correctness-level matrix of the paper, verified empirically: for
// every algorithm, sweep seeded random interleavings of mixed update
// streams and check the Section 3.1 levels. ECA and its variants must be
// strongly consistent on EVERY interleaving (Theorem B.1, Appendix C);
// LCA and SC must additionally be complete; the basic algorithm must be
// caught violating weak consistency on at least one interleaving.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/eca.h"
#include "core/eca_key.h"
#include "core/multi_view.h"
#include "test_util.h"
#include "workload/generator.h"

namespace wvm {
namespace {

struct SweepSetup {
  Workload workload;
  std::vector<Update> updates;
};

SweepSetup MakeChainSetup(uint64_t seed, int64_t k = 8) {
  Random rng(seed);
  Result<Workload> w = MakeExample6Workload({/*c=*/12, /*j=*/2}, &rng);
  EXPECT_TRUE(w.ok()) << w.status();
  Result<std::vector<Update>> updates =
      MakeMixedUpdates(*w, k, /*delete_fraction=*/0.35, &rng);
  EXPECT_TRUE(updates.ok()) << updates.status();
  return SweepSetup{std::move(*w), std::move(*updates)};
}

SweepSetup MakeKeyedSetup(uint64_t seed, int64_t k = 8) {
  Random rng(seed);
  Result<Workload> w = MakeKeyedWorkload({/*c=*/12, /*j=*/3}, &rng);
  EXPECT_TRUE(w.ok()) << w.status();
  Result<std::vector<Update>> updates =
      MakeMixedUpdates(*w, k, /*delete_fraction=*/0.35, &rng);
  EXPECT_TRUE(updates.ok()) << updates.status();
  return SweepSetup{std::move(*w), std::move(*updates)};
}

SweepSetup MakeFkStarSetup(uint64_t seed, int64_t k = 10) {
  Random rng(seed);
  Result<Workload> w =
      MakeFkStarWorkload({/*orders=*/24, /*parts=*/8, /*suppliers=*/4,
                          /*cold_parts=*/2},
                         &rng);
  EXPECT_TRUE(w.ok()) << w.status();
  Result<std::vector<Update>> updates = MakeFkStarUpdates(*w, k, &rng);
  EXPECT_TRUE(updates.ok()) << updates.status();
  return SweepSetup{std::move(*w), std::move(*updates)};
}

class MatrixSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MatrixSweep, EcaIsStronglyConsistent) {
  SweepSetup s = MakeChainSetup(GetParam());
  ConsistencyReport r = RunRandomized(s.workload.initial, s.workload.view,
                                      Algorithm::kEca, s.updates, GetParam());
  EXPECT_TRUE(r.strongly_consistent) << r.ToString();
}

TEST_P(MatrixSweep, EcaKeyIsStronglyConsistent) {
  SweepSetup s = MakeKeyedSetup(GetParam());
  ConsistencyReport r =
      RunRandomized(s.workload.initial, s.workload.view, Algorithm::kEcaKey,
                    s.updates, GetParam());
  EXPECT_TRUE(r.strongly_consistent) << r.ToString();
}

TEST_P(MatrixSweep, EcaLocalIsStronglyConsistentOnChain) {
  SweepSetup s = MakeChainSetup(GetParam());
  ConsistencyReport r =
      RunRandomized(s.workload.initial, s.workload.view, Algorithm::kEcaLocal,
                    s.updates, GetParam());
  EXPECT_TRUE(r.strongly_consistent) << r.ToString();
}

TEST_P(MatrixSweep, EcaLocalIsStronglyConsistentOnKeyedView) {
  // Keyed view: deletes take the local key-delete path.
  SweepSetup s = MakeKeyedSetup(GetParam());
  ConsistencyReport r =
      RunRandomized(s.workload.initial, s.workload.view, Algorithm::kEcaLocal,
                    s.updates, GetParam());
  EXPECT_TRUE(r.strongly_consistent) << r.ToString();
}

TEST_P(MatrixSweep, LcaIsComplete) {
  SweepSetup s = MakeChainSetup(GetParam());
  ConsistencyReport r = RunRandomized(s.workload.initial, s.workload.view,
                                      Algorithm::kLca, s.updates, GetParam());
  EXPECT_TRUE(r.strongly_consistent) << r.ToString();
  EXPECT_TRUE(r.complete) << r.ToString();
}

TEST_P(MatrixSweep, ScIsComplete) {
  SweepSetup s = MakeChainSetup(GetParam());
  ConsistencyReport r = RunRandomized(s.workload.initial, s.workload.view,
                                      Algorithm::kSc, s.updates, GetParam());
  EXPECT_TRUE(r.complete) << r.ToString();
}

TEST_P(MatrixSweep, RvIsStronglyConsistentWhenPeriodDividesK) {
  SweepSetup s = MakeChainSetup(GetParam());
  for (int period : {1, 2, 4}) {
    ConsistencyReport r =
        RunRandomized(s.workload.initial, s.workload.view, Algorithm::kRv,
                      s.updates, GetParam(), period);
    EXPECT_TRUE(r.strongly_consistent)
        << "period " << period << ": " << r.ToString();
  }
}

TEST_P(MatrixSweep, EcaNoCollectIsConvergent) {
  SweepSetup s = MakeChainSetup(GetParam());
  ConsistencyReport r =
      RunRandomized(s.workload.initial, s.workload.view,
                    Algorithm::kEcaNoCollect, s.updates, GetParam());
  EXPECT_TRUE(r.convergent) << r.ToString();
}

TEST_P(MatrixSweep, SelfMaintainerIsStronglyConsistentOnFkStar) {
  // Mixed local/remote processing: most updates answered from constraints
  // and complements, cold-part references falling back to the source.
  SweepSetup s = MakeFkStarSetup(GetParam());
  ConsistencyReport r =
      RunRandomized(s.workload.initial, s.workload.view,
                    Algorithm::kSelfMaintain, s.updates, GetParam());
  EXPECT_TRUE(r.strongly_consistent) << r.ToString();
}

TEST_P(MatrixSweep, SelfMaintainerIsStronglyConsistentOnChain) {
  // No declared constraints: full complements answer everything locally.
  SweepSetup s = MakeChainSetup(GetParam());
  ConsistencyReport r =
      RunRandomized(s.workload.initial, s.workload.view,
                    Algorithm::kSelfMaintain, s.updates, GetParam());
  EXPECT_TRUE(r.strongly_consistent) << r.ToString();
}

TEST_P(MatrixSweep, SelfMaintainerFinalStateMatchesEca) {
  // The differential row of the matrix: same fk-star stream under ECA and
  // under SelfMaintainer, both finals equal to the source truth (and hence
  // to each other) on every seed.
  SweepSetup s = MakeFkStarSetup(GetParam());
  for (Algorithm algorithm : {Algorithm::kEca, Algorithm::kSelfMaintain}) {
    std::unique_ptr<Simulation> sim =
        MustMakeSim(s.workload.initial, s.workload.view, algorithm);
    sim->SetUpdateScript(s.updates);
    RandomPolicy policy(GetParam() * 17 + 3);
    ASSERT_TRUE(RunToQuiescence(sim.get(), &policy).ok());
    Result<Relation> expected = sim->SourceViewNow();
    ASSERT_TRUE(expected.ok());
    EXPECT_EQ(sim->warehouse_view(), *expected) << AlgorithmName(algorithm);
  }
}

TEST_P(MatrixSweep, EcaBatchIsStronglyConsistent) {
  SweepSetup s = MakeChainSetup(GetParam());
  for (int batch : {2, 3}) {
    ConsistencyReport r =
        RunRandomized(s.workload.initial, s.workload.view,
                      Algorithm::kEcaBatch, s.updates, GetParam(),
                      /*rv_period=*/1, /*batch_size=*/batch);
    EXPECT_TRUE(r.strongly_consistent)
        << "batch " << batch << ": " << r.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MatrixSweep,
                         ::testing::Range<uint64_t>(1, 26));

// --- Multi-view shared maintenance -----------------------------------------
// Five children of mixed algorithms (ECA and ECA-Key) over five views of
// the keyed workload — two pairs structurally identical across children —
// maintained through one warehouse, on clean and on faulty (reliable)
// transports. Shared maintenance on must be tuple-for-tuple identical to
// the independent-children baseline for EVERY child, and child 0's state
// sequence must stay strongly consistent either way.

struct MultiViewMatrixSetup {
  Workload workload;
  std::vector<ViewDefinitionPtr> views;
  std::vector<Update> updates;
};

MultiViewMatrixSetup MakeMultiViewSetup(uint64_t seed) {
  Random rng(seed);
  Result<Workload> w = MakeKeyedWorkload({/*c=*/12, /*j=*/3}, &rng);
  EXPECT_TRUE(w.ok()) << w.status();
  Result<std::vector<Update>> updates =
      MakeMixedUpdates(*w, /*k=*/8, /*delete_fraction=*/0.35, &rng);
  EXPECT_TRUE(updates.ok()) << updates.status();
  MultiViewMatrixSetup s{std::move(*w), {}, std::move(*updates)};
  s.views = {
      s.workload.view,  // EcaKey
      // Structural twin of the keyed view, owned by a different object.
      *ViewDefinition::NaturalJoin("V1", s.workload.defs, {"W", "Y"}),  // Eca
      *ViewDefinition::NaturalJoin("V2", s.workload.defs, {"W"}),      // Eca
      *ViewDefinition::NaturalJoin("V3", s.workload.defs,
                                   {"W", "Y"}),  // EcaKey twin
      *ViewDefinition::NaturalJoin("V4", s.workload.defs, {"X", "Y"}),  // Eca
  };
  return s;
}

std::unique_ptr<MultiViewWarehouse> MakeMixedChildren(
    const MultiViewMatrixSetup& s, bool dedup) {
  std::vector<std::unique_ptr<ViewMaintainer>> children;
  children.push_back(std::make_unique<EcaKey>(s.views[0]));
  children.push_back(std::make_unique<Eca>(s.views[1]));
  children.push_back(std::make_unique<Eca>(s.views[2]));
  children.push_back(std::make_unique<EcaKey>(s.views[3]));
  children.push_back(std::make_unique<Eca>(s.views[4]));
  MultiViewOptions options;
  options.dedup = dedup;
  return std::make_unique<MultiViewWarehouse>(std::move(children), options);
}

class MultiViewMatrix : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MultiViewMatrix, SharedMaintenanceMatchesIndependentChildren) {
  const uint64_t seed = GetParam();
  MultiViewMatrixSetup s = MakeMultiViewSetup(seed);
  for (bool faulty : {false, true}) {
    std::vector<Relation> baseline;
    int64_t baseline_messages = 0;
    for (bool dedup : {false, true}) {
      auto multi_owner = MakeMixedChildren(s, dedup);
      MultiViewWarehouse* multi = multi_owner.get();
      SimulationOptions options;
      if (faulty) {
        options.fault.enabled = true;
        options.fault.reliable = true;
        options.fault.seed = seed;
        options.fault.retransmit_timeout_ticks = 6;
        options.fault.drop_rate = 0.25;
        options.fault.duplicate_rate = 0.2;
        options.fault.reorder_rate = 0.3;
        options.fault.max_delay_ticks = 2;
      }
      Result<std::unique_ptr<Simulation>> sim = Simulation::Create(
          s.workload.initial, s.views[0], std::move(multi_owner), options);
      ASSERT_TRUE(sim.ok()) << sim.status();
      (*sim)->SetUpdateScript(s.updates);
      RandomPolicy policy(seed * 31 + faulty);
      ASSERT_TRUE(RunToQuiescence(sim->get(), &policy).ok());
      ASSERT_TRUE(multi->IsQuiescent());
      ConsistencyReport report = CheckConsistency((*sim)->state_log());
      EXPECT_TRUE(report.strongly_consistent)
          << "dedup=" << dedup << " faulty=" << faulty << ": "
          << report.ToString();
      std::vector<Relation> finals;
      for (size_t i = 0; i < s.views.size(); ++i) {
        Result<Relation> expected =
            EvaluateView(s.views[i], (*sim)->source_catalog());
        ASSERT_TRUE(expected.ok());
        EXPECT_EQ(multi->child(i).view_contents(), *expected)
            << "child " << i << " dedup=" << dedup << " faulty=" << faulty;
        finals.push_back(multi->child(i).view_contents());
      }
      if (!dedup) {
        baseline = std::move(finals);
        baseline_messages = (*sim)->meter().query_messages();
      } else {
        for (size_t i = 0; i < baseline.size(); ++i) {
          EXPECT_EQ(finals[i], baseline[i])
              << "child " << i << " diverges under shared maintenance"
              << " (faulty=" << faulty << ")";
        }
        EXPECT_LE((*sim)->meter().query_messages(), baseline_messages);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MultiViewMatrix,
                         ::testing::Range<uint64_t>(1, 13));

TEST(MatrixSummaryTest, BasicViolatesCorrectnessSomewhere) {
  // The anomaly must actually occur in the sweep: across seeds, the basic
  // algorithm fails convergence (and usually weak consistency) at least
  // once. (Any single interleaving may happen to be benign.)
  int violations = 0;
  for (uint64_t seed = 1; seed <= 25; ++seed) {
    SweepSetup s = MakeChainSetup(seed);
    ConsistencyReport r = RunRandomized(s.workload.initial, s.workload.view,
                                        Algorithm::kBasic, s.updates, seed);
    if (!r.strongly_consistent) {
      ++violations;
    }
  }
  EXPECT_GT(violations, 0);
}

TEST(MatrixSummaryTest, EcaWithoutCompensationViolatesSomewhere) {
  int violations = 0;
  for (uint64_t seed = 1; seed <= 25; ++seed) {
    SweepSetup s = MakeChainSetup(seed);
    ConsistencyReport r =
        RunRandomized(s.workload.initial, s.workload.view,
                      Algorithm::kEcaNoCompensation, s.updates, seed);
    if (!r.convergent) {
      ++violations;
    }
  }
  EXPECT_GT(violations, 0);
}

TEST(MatrixSummaryTest, EcaWithoutCollectLosesConsistencySomewhere) {
  // Convergent-but-not-consistent is precisely what Section 5.2 predicts
  // for installing answers early.
  int inconsistent = 0;
  for (uint64_t seed = 1; seed <= 25; ++seed) {
    SweepSetup s = MakeChainSetup(seed);
    ConsistencyReport r =
        RunRandomized(s.workload.initial, s.workload.view,
                      Algorithm::kEcaNoCollect, s.updates, seed);
    EXPECT_TRUE(r.convergent) << r.ToString();
    if (!r.consistent) {
      ++inconsistent;
    }
  }
  EXPECT_GT(inconsistent, 0);
}

TEST(MatrixSummaryTest, EcaIsNotCompleteInGeneral) {
  // ECA skips states while batching in COLLECT; under adversarial
  // (worst-case) interleavings completeness must fail for some seed, which
  // is why the paper introduces LCA.
  int incomplete = 0;
  for (uint64_t seed = 1; seed <= 25; ++seed) {
    SweepSetup s = MakeChainSetup(seed);
    SimulationOptions options;
    std::unique_ptr<Simulation> sim =
        MustMakeSim(s.workload.initial, s.workload.view, Algorithm::kEca,
                    options);
    sim->SetUpdateScript(s.updates);
    WorstCasePolicy policy;
    ASSERT_TRUE(RunToQuiescence(sim.get(), &policy).ok());
    ConsistencyReport r = CheckConsistency(sim->state_log());
    EXPECT_TRUE(r.strongly_consistent) << r.ToString();
    if (!r.complete) {
      ++incomplete;
    }
  }
  EXPECT_GT(incomplete, 0);
}

}  // namespace
}  // namespace wvm
