// Cross-algorithm oracle tests: SC never queries the source and applies
// exact local deltas, so its final view is ground truth. Every other
// correct algorithm must agree with it — and with the view evaluated
// directly at the source — after any interleaving of any valid stream.
// This is the broadest differential net in the suite.
#include <gtest/gtest.h>

#include "test_util.h"
#include "workload/generator.h"

namespace wvm {
namespace {

struct OracleCase {
  Workload workload;
  std::vector<Update> updates;
};

OracleCase MakeCase(uint64_t seed, bool keyed) {
  Random rng(seed);
  Result<Workload> w = keyed
                           ? MakeKeyedWorkload({16, 2}, &rng)
                           : MakeExample6Workload({16, 2}, &rng);
  EXPECT_TRUE(w.ok());
  Result<std::vector<Update>> updates = MakeMixedUpdates(*w, 10, 0.4, &rng);
  EXPECT_TRUE(updates.ok());
  return OracleCase{std::move(*w), std::move(*updates)};
}

Relation FinalView(const OracleCase& c, Algorithm algorithm, uint64_t seed,
                   int rv_period = 1) {
  std::unique_ptr<Simulation> sim =
      MustMakeSim(c.workload.initial, c.workload.view, algorithm, {},
                  rv_period);
  sim->SetUpdateScript(c.updates);
  RandomPolicy policy(seed * 1013);
  EXPECT_TRUE(RunToQuiescence(sim.get(), &policy).ok());
  EXPECT_TRUE(sim->maintainer().IsQuiescent())
      << AlgorithmName(algorithm) << " left pending state";
  return sim->warehouse_view();
}

class OracleSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(OracleSweep, CorrectAlgorithmsAgreeWithScOnChainViews) {
  OracleCase c = MakeCase(GetParam(), /*keyed=*/false);
  Relation truth = FinalView(c, Algorithm::kSc, GetParam());

  for (Algorithm a : {Algorithm::kEca, Algorithm::kEcaLocal, Algorithm::kLca,
                      Algorithm::kEcaNoCollect}) {
    EXPECT_EQ(FinalView(c, a, GetParam()), truth) << AlgorithmName(a);
  }
  // RV with period 1 recomputes after every update: also converges.
  EXPECT_EQ(FinalView(c, Algorithm::kRv, GetParam(), 1), truth);

  // And truth is really the source view.
  Catalog state = c.workload.initial.Clone();
  for (Update u : c.updates) {
    ASSERT_TRUE(state.Apply(u).ok());
  }
  Result<Relation> at_source = EvaluateView(c.workload.view, state);
  ASSERT_TRUE(at_source.ok());
  EXPECT_EQ(truth, *at_source);
}

TEST_P(OracleSweep, KeyedAlgorithmsAgreeWithScOnKeyedViews) {
  OracleCase c = MakeCase(GetParam() + 1000, /*keyed=*/true);
  Relation truth = FinalView(c, Algorithm::kSc, GetParam());
  for (Algorithm a :
       {Algorithm::kEca, Algorithm::kEcaKey, Algorithm::kEcaLocal,
        Algorithm::kLca}) {
    EXPECT_EQ(FinalView(c, a, GetParam()), truth) << AlgorithmName(a);
  }
}

TEST_P(OracleSweep, BatchedEcaAgreesWithSc) {
  OracleCase c = MakeCase(GetParam() + 2000, /*keyed=*/false);
  Relation truth = FinalView(c, Algorithm::kSc, GetParam());
  for (int batch : {2, 5}) {
    SimulationOptions options;
    options.batch_size = batch;
    std::unique_ptr<Simulation> sim = MustMakeSim(
        c.workload.initial, c.workload.view, Algorithm::kEcaBatch, options);
    sim->SetUpdateScript(c.updates);
    RandomPolicy policy(GetParam() * 17);
    ASSERT_TRUE(RunToQuiescence(sim.get(), &policy).ok());
    EXPECT_EQ(sim->warehouse_view(), truth) << "batch " << batch;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OracleSweep,
                         ::testing::Range<uint64_t>(1, 31));

}  // namespace
}  // namespace wvm
