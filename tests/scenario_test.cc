// Tests for the scenario text format and its runner.
#include "script/scenario_parser.h"

#include <gtest/gtest.h>

#include "script/scenario_runner.h"

namespace wvm {
namespace {

constexpr char kAnomalyScenario[] = R"(
# Example 2 of the paper
relation r1 W:int X:int
relation r2 X:int Y:int
tuple r1 1 2
view V project W
algorithm basic
order worst
update insert r2 2 3
update insert r1 4 2
expect-final [1] [4] [4]
)";

TEST(ScenarioParserTest, ParsesTheFullGrammar) {
  Result<ScenarioSpec> spec = ParseScenario(kAnomalyScenario);
  ASSERT_TRUE(spec.ok()) << spec.status();
  EXPECT_EQ(spec->defs.size(), 2u);
  EXPECT_EQ(spec->algorithm, Algorithm::kBasic);
  EXPECT_EQ(spec->order, ScenarioSpec::Order::kWorst);
  EXPECT_EQ(spec->batches.size(), 2u);
  ASSERT_TRUE(spec->expected_final.has_value());
  EXPECT_EQ(spec->expected_final->TotalPositive(), 3);
  EXPECT_EQ(spec->initial.Get("r1").value()->TotalPositive(), 1);
}

TEST(ScenarioParserTest, KeysAndConditions) {
  Result<ScenarioSpec> spec = ParseScenario(R"(
relation r1 W:int:key X:int
relation r2 X:int Y:int:key
view V project W Y where W > 2 and Y != 9
update insert r1 3 1
)");
  ASSERT_TRUE(spec.ok()) << spec.status();
  EXPECT_TRUE(spec->view->KeysProjected());
  EXPECT_NE(spec->view->cond().ToString().find("W > 2"), std::string::npos);
  EXPECT_NE(spec->view->cond().ToString().find("Y != 9"), std::string::npos);
}

TEST(ScenarioParserTest, BatchesSplitOnPipes) {
  Result<ScenarioSpec> spec = ParseScenario(R"(
relation r1 W:int X:int
view V project W
batch delete r1 1 2 | insert r1 1 9
)");
  ASSERT_TRUE(spec.ok()) << spec.status();
  ASSERT_EQ(spec->batches.size(), 1u);
  ASSERT_EQ(spec->batches[0].size(), 2u);
  EXPECT_EQ(spec->batches[0][0].kind, UpdateKind::kDelete);
  EXPECT_EQ(spec->batches[0][1].kind, UpdateKind::kInsert);
}

TEST(ScenarioParserTest, RandomOrderWithSeed) {
  Result<ScenarioSpec> spec = ParseScenario(R"(
relation r1 W:int
view V project W
order random 99
)");
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec->order, ScenarioSpec::Order::kRandom);
  EXPECT_EQ(spec->seed, 99u);
}

TEST(ScenarioParserTest, ErrorsCarryLineNumbers) {
  Result<ScenarioSpec> bad = ParseScenario(R"(
relation r1 W:int
view V project W
frobnicate everything
)");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("line 4"), std::string::npos);
}

TEST(ScenarioParserTest, RejectsBadInputs) {
  EXPECT_FALSE(ParseScenario("view V project W\n").ok());  // no relations
  EXPECT_FALSE(ParseScenario("relation r1 W\n").ok());  // missing type
  EXPECT_FALSE(
      ParseScenario("relation r1 W:blob\nview V project W\n").ok());
  EXPECT_FALSE(ParseScenario("relation r1 W:int\n").ok());  // no view
  EXPECT_FALSE(ParseScenario(R"(
relation r1 W:int
view V project W
update insert r2 1
)")
                   .ok());  // unknown relation in update
  EXPECT_FALSE(ParseScenario(R"(
relation r1 W:int X:int
view V project W
update insert r1 1
)")
                   .ok());  // arity mismatch
  EXPECT_FALSE(ParseScenario(R"(
relation r1 W:int
view V project W where W >>> 3
)")
                   .ok());  // bad operator
  EXPECT_FALSE(ParseScenario(R"(
relation r1 W:int
view V project W
algorithm quantum
)")
                   .ok());
}

TEST(ScenarioParserTest, RelationsAfterViewRejected) {
  EXPECT_FALSE(ParseScenario(R"(
relation r1 W:int
view V project W
relation r2 X:int
)")
                   .ok());
}

TEST(ScenarioRunnerTest, ReproducesTheAnomaly) {
  Result<ScenarioSpec> spec = ParseScenario(kAnomalyScenario);
  ASSERT_TRUE(spec.ok());
  Result<ScenarioOutcome> outcome = RunScenario(*spec);
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  ASSERT_TRUE(outcome->expectation_met.has_value());
  EXPECT_TRUE(*outcome->expectation_met);
  EXPECT_FALSE(outcome->consistency.convergent);
  EXPECT_NE(outcome->trace.find("insert(r2,[2,3])"), std::string::npos);
}

TEST(ScenarioRunnerTest, SwappingAlgorithmRepairsTheAnomaly) {
  Result<ScenarioSpec> spec = ParseScenario(kAnomalyScenario);
  ASSERT_TRUE(spec.ok());
  spec->algorithm = Algorithm::kEca;
  spec->expected_final.reset();
  Result<ScenarioOutcome> outcome = RunScenario(*spec);
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(outcome->consistency.strongly_consistent);
  EXPECT_EQ(outcome->final_view, outcome->source_view);
}

TEST(ScenarioRunnerTest, ReplicateRunsEcaSc) {
  Result<ScenarioSpec> spec = ParseScenario(R"(
relation r1 W:int X:int
relation r2 X:int Y:int
tuple r1 1 2
tuple r2 2 3
view V project W Y
replicate r2
order worst
update insert r1 7 2
update insert r2 2 9
)");
  ASSERT_TRUE(spec.ok()) << spec.status();
  EXPECT_EQ(spec->replicated, std::set<std::string>{"r2"});
  Result<ScenarioOutcome> outcome = RunScenario(*spec);
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  EXPECT_TRUE(outcome->consistency.strongly_consistent)
      << outcome->consistency.ToString();
  EXPECT_EQ(outcome->final_view, outcome->source_view);
}

TEST(ScenarioRunnerTest, ReplicateRejectsNonEcaAlgorithms) {
  Result<ScenarioSpec> spec = ParseScenario(R"(
relation r1 W:int
view V project W
algorithm lca
replicate r1
)");
  ASSERT_TRUE(spec.ok());
  EXPECT_FALSE(RunScenario(*spec).ok());
}

TEST(ScenarioRunnerTest, StringTypedColumns) {
  Result<ScenarioSpec> spec = ParseScenario(R"(
relation users id:int:key name:string
tuple users 1 ada
tuple users 2 grace
view V project id name
algorithm eca
update delete users 1 ada
update insert users 3 edsger
)");
  ASSERT_TRUE(spec.ok()) << spec.status();
  Result<ScenarioOutcome> outcome = RunScenario(*spec);
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  EXPECT_TRUE(outcome->consistency.strongly_consistent)
      << outcome->consistency.ToString();
  EXPECT_EQ(outcome->final_view.TotalPositive(), 2);
}

}  // namespace
}  // namespace wvm
