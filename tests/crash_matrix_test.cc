// System-level crash-restart schedules (the acceptance matrix of the
// recovery subsystem):
//
//   1. deterministic: crash each site at EVERY schedule point of a small
//      update script, for ECA / ECA-Key / ECA-Local, on a clean and on a
//      faulty reliable transport — every schedule still converges and the
//      Section 3.1 checker still reports strong consistency;
//   2. randomized: >= 50 seeded random crash/fault schedules per algorithm
//      and crash site (25 seeds x {crash-warehouse, crash-source}), with
//      random crash points, random downtime, and periodic checkpoints;
//   3. the negative space: with recovery DISABLED a crash provably loses
//      state (the lost-state anomaly the journal exists to prevent), a
//      corrupted journal record refuses to restart, recovery without the
//      reliable transport is rejected, and — journal off by default — a
//      crash-free recovery-enabled run leaves every observable counter
//      byte-identical to a recovery-disabled run.
#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <vector>

#include "common/random.h"
#include "core/eca.h"
#include "core/eca_key.h"
#include "core/multi_view.h"
#include "replication/replicated_simulation.h"
#include "test_util.h"
#include "workload/generator.h"

namespace wvm {
namespace {

enum class CrashSite { kWarehouse, kSource };

FaultConfig ReliableTransport(uint64_t seed, bool faulty) {
  FaultConfig f;
  f.enabled = true;
  f.reliable = true;
  f.seed = seed;
  f.retransmit_timeout_ticks = 6;
  if (faulty) {
    f.drop_rate = 0.25;
    f.duplicate_rate = 0.2;
    f.reorder_rate = 0.3;
    f.max_delay_ticks = 2;
  }
  return f;
}

SimulationOptions RecoveryOptionsFor(uint64_t seed, bool faulty,
                                     int checkpoint_every) {
  SimulationOptions options;
  options.fault = ReliableTransport(seed, faulty);
  options.recovery.enabled = true;
  options.recovery.checkpoint_every = checkpoint_every;
  return options;
}

Status Crash(Simulation* sim, CrashSite site) {
  return site == CrashSite::kWarehouse ? sim->CrashWarehouse()
                                       : sim->CrashSource();
}

Status Restart(Simulation* sim, CrashSite site) {
  return site == CrashSite::kWarehouse ? sim->RestartWarehouse()
                                       : sim->RestartSource();
}

// While a site is down only wire time can pass; let a bounded amount of it
// elapse so in-flight frames reach the dead site (and are discarded there)
// before the restart — the hardest re-sync case.
void LetWireRunWhileDown(Simulation* sim, int ticks) {
  for (int i = 0; i < ticks && sim->CanTransportTick(); ++i) {
    ASSERT_TRUE(sim->StepTransportTick().ok());
  }
}

struct CrashRunResult {
  Status run;
  ConsistencyReport report;
  bool converged = false;
};

// Runs `sim` to quiescence with a random policy, crashing `site` at action
// number `crash_at` (counted across all performed actions) and restarting
// it after `downtime` wire ticks. crash_at < 0 disables crashing.
CrashRunResult RunWithCrashAt(Simulation* sim, uint64_t seed, CrashSite site,
                              int crash_at, int downtime) {
  CrashRunResult result;
  RandomPolicy policy(seed);
  int actions = 0;
  int guard = 0;
  bool crashed = false;
  while (true) {
    if (++guard > 2000000) {
      result.run = Status::Internal("crash schedule failed to quiesce");
      return result;
    }
    if (!crashed && crash_at >= 0 && actions >= crash_at) {
      crashed = true;
      result.run = Crash(sim, site);
      if (!result.run.ok()) {
        return result;
      }
      LetWireRunWhileDown(sim, downtime);
      result.run = Restart(sim, site);
      if (!result.run.ok()) {
        return result;
      }
      continue;
    }
    SimAction action = policy.Next(*sim);
    if (action == SimAction::kNone) {
      if (!crashed && crash_at >= 0) {
        // The schedule ended before the crash point: crash at quiescence
        // (still a valid schedule point — the site must come back clean).
        crash_at = actions;
        continue;
      }
      break;
    }
    result.run = sim->Step(action);
    if (!result.run.ok()) {
      return result;
    }
    ++actions;
  }
  result.run = Status::OK();
  result.report = CheckConsistency(sim->state_log());
  Result<Relation> source_view = sim->SourceViewNow();
  EXPECT_TRUE(source_view.ok()) << source_view.status();
  result.converged =
      source_view.ok() && sim->warehouse_view() == *source_view &&
      sim->maintainer().IsQuiescent();
  return result;
}

CrashRunResult RunWithCrashAt(std::unique_ptr<Simulation> sim, uint64_t seed,
                              CrashSite site, int crash_at, int downtime) {
  return RunWithCrashAt(sim.get(), seed, site, crash_at, downtime);
}

std::unique_ptr<Simulation> MakeCrashSim(Algorithm algorithm, uint64_t seed,
                                         const SimulationOptions& options,
                                         int updates = 6) {
  Random rng(seed);
  // SelfMaintainer gets the key/FK star its decision procedure feeds on
  // (with integrity-preserving updates), so crashes land while auxiliary
  // complements and the update-history journal are in active use.
  Result<Workload> w =
      algorithm == Algorithm::kSelfMaintain
          ? MakeFkStarWorkload({/*orders=*/16, /*parts=*/6, /*suppliers=*/3,
                                /*cold_parts=*/1},
                               &rng)
      : algorithm == Algorithm::kEcaKey ? MakeKeyedWorkload({10, 3}, &rng)
                                        : MakeExample6Workload({10, 2}, &rng);
  EXPECT_TRUE(w.ok()) << w.status();
  Result<std::vector<Update>> script =
      algorithm == Algorithm::kSelfMaintain
          ? MakeFkStarUpdates(*w, updates, &rng)
          : MakeMixedUpdates(*w, updates, 0.35, &rng);
  EXPECT_TRUE(script.ok()) << script.status();
  std::unique_ptr<Simulation> sim =
      MustMakeSim(w->initial, w->view, algorithm, options);
  sim->SetUpdateScript(*script);
  return sim;
}

// ---------------------------------------------------------------------------
// 1. Deterministic: crash each site at every schedule point.

class CrashEverywhereTest
    : public ::testing::TestWithParam<std::tuple<Algorithm, bool>> {};

TEST_P(CrashEverywhereTest, EverySchedulePointEverySiteStaysConsistent) {
  const auto [algorithm, faulty] = GetParam();
  constexpr uint64_t kSeed = 11;
  // Count the schedule points of the crash-free run first.
  CrashRunResult base = RunWithCrashAt(
      MakeCrashSim(algorithm, kSeed,
                   RecoveryOptionsFor(kSeed, faulty, /*checkpoint_every=*/0),
                   /*updates=*/4),
      kSeed, CrashSite::kWarehouse, /*crash_at=*/-1, /*downtime=*/0);
  ASSERT_TRUE(base.run.ok()) << base.run;
  ASSERT_TRUE(base.report.strongly_consistent);
  ASSERT_TRUE(base.converged);
  // The same policy seed replays the same schedule, so `crash_at` sweeps
  // every prefix of it (past the end it crashes at quiescence). Cap the
  // sweep to keep the matrix affordable while still crossing every update,
  // query, answer, and a tail of ticks.
  for (CrashSite site : {CrashSite::kWarehouse, CrashSite::kSource}) {
    for (int crash_at = 0; crash_at <= 40; crash_at += 2) {
      CrashRunResult r = RunWithCrashAt(
          MakeCrashSim(algorithm, kSeed,
                       RecoveryOptionsFor(kSeed, faulty, 0), 4),
          kSeed, site, crash_at, /*downtime=*/3);
      ASSERT_TRUE(r.run.ok())
          << "site=" << static_cast<int>(site) << " at=" << crash_at
          << ": " << r.run;
      EXPECT_TRUE(r.report.strongly_consistent)
          << "site=" << static_cast<int>(site) << " at=" << crash_at;
      EXPECT_TRUE(r.converged)
          << "site=" << static_cast<int>(site) << " at=" << crash_at;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, CrashEverywhereTest,
    ::testing::Combine(::testing::Values(Algorithm::kEca, Algorithm::kEcaKey,
                                         Algorithm::kEcaLocal,
                                         Algorithm::kSelfMaintain),
                       ::testing::Bool()));

// ---------------------------------------------------------------------------
// 2. Randomized: >= 50 seeded crash/fault schedules per algorithm and site.

class RandomCrashMatrix : public ::testing::TestWithParam<uint64_t> {
 protected:
  void RunSite(Algorithm algorithm, CrashSite site) {
    const uint64_t seed = GetParam();
    Random rng(seed * 7919 + 13);
    // Random crash point, random downtime, and a checkpoint cadence that
    // sweeps 0 (initial-checkpoint only) through 3 — so truncation and
    // mid-run checkpoints are exercised too.
    const int crash_at = static_cast<int>(rng.Uniform(30));
    const int downtime = static_cast<int>(rng.Uniform(6));
    const int checkpoint_every = static_cast<int>(seed % 4);
    CrashRunResult r = RunWithCrashAt(
        MakeCrashSim(algorithm, seed,
                     RecoveryOptionsFor(seed * 1337 + 1, /*faulty=*/true,
                                        checkpoint_every)),
        seed, site, crash_at, downtime);
    ASSERT_TRUE(r.run.ok()) << r.run;
    EXPECT_TRUE(r.report.strongly_consistent);
    EXPECT_TRUE(r.converged);
  }
};

TEST_P(RandomCrashMatrix, EcaSurvivesWarehouseCrash) {
  RunSite(Algorithm::kEca, CrashSite::kWarehouse);
}
TEST_P(RandomCrashMatrix, EcaSurvivesSourceCrash) {
  RunSite(Algorithm::kEca, CrashSite::kSource);
}
TEST_P(RandomCrashMatrix, EcaKeySurvivesWarehouseCrash) {
  RunSite(Algorithm::kEcaKey, CrashSite::kWarehouse);
}
TEST_P(RandomCrashMatrix, EcaKeySurvivesSourceCrash) {
  RunSite(Algorithm::kEcaKey, CrashSite::kSource);
}
TEST_P(RandomCrashMatrix, EcaLocalSurvivesWarehouseCrash) {
  RunSite(Algorithm::kEcaLocal, CrashSite::kWarehouse);
}
TEST_P(RandomCrashMatrix, EcaLocalSurvivesSourceCrash) {
  RunSite(Algorithm::kEcaLocal, CrashSite::kSource);
}
TEST_P(RandomCrashMatrix, SelfMaintainerSurvivesWarehouseCrash) {
  RunSite(Algorithm::kSelfMaintain, CrashSite::kWarehouse);
}
TEST_P(RandomCrashMatrix, SelfMaintainerSurvivesSourceCrash) {
  RunSite(Algorithm::kSelfMaintain, CrashSite::kSource);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomCrashMatrix,
                         ::testing::Range<uint64_t>(1, 26));

// ---------------------------------------------------------------------------
// 3a. The lost-state anomaly: without recovery, a crash between delivery
// and consumption silently loses an acked message, and the view never
// catches up — exactly the hole the "acked => journaled" invariant plugs.

TEST(LostStateAnomalyTest, BareRestartLosesDeliveredAnswerForever) {
  auto run = [](uint64_t seed, bool with_recovery) {
    Random rng(seed);
    Result<Workload> w = MakeExample6Workload({10, 2}, &rng);
    EXPECT_TRUE(w.ok()) << w.status();
    Result<std::vector<Update>> script = MakeMixedUpdates(*w, 1, 0.0, &rng);
    EXPECT_TRUE(script.ok()) << script.status();
    SimulationOptions options;
    options.fault = ReliableTransport(/*seed=*/5, /*faulty=*/false);
    options.recovery.enabled = with_recovery;
    std::unique_ptr<Simulation> sim =
        MustMakeSim(w->initial, w->view, Algorithm::kEca, options);
    sim->SetUpdateScript(*script);
    // Drive the single update's full round trip up to (not including) the
    // answer's consumption: U1 notified and consumed, Q1 sent, answered,
    // and the answer DELIVERED (hence acked) at the warehouse.
    EXPECT_TRUE(sim->StepSourceUpdate().ok());
    auto pump = [&sim](bool (Simulation::*can)() const,
                       Status (Simulation::*step)()) {
      int guard = 0;
      while (!((*sim).*can)() && sim->CanTransportTick()) {
        EXPECT_TRUE(sim->StepTransportTick().ok());
        if (++guard > 10000) {
          FAIL() << "pump stuck";
        }
      }
      EXPECT_TRUE(((*sim).*step)().ok());
    };
    pump(&Simulation::CanWarehouseStep, &Simulation::StepWarehouse);  // U1
    pump(&Simulation::CanSourceAnswer, &Simulation::StepSourceAnswer);
    int guard = 0;
    while (!sim->CanWarehouseStep()) {  // answer in flight -> delivered
      EXPECT_TRUE(sim->StepTransportTick().ok());
      if (++guard > 10000) {
        break;
      }
    }
    EXPECT_TRUE(sim->CanWarehouseStep());
    // Crash NOW: the answer sits delivered-but-unconsumed. The source has
    // seen the cumulative ack, so no retransmission will ever repair this.
    EXPECT_TRUE(sim->CrashWarehouse().ok());
    EXPECT_TRUE(sim->RestartWarehouse().ok());
    RandomPolicy policy(17);
    EXPECT_TRUE(RunToQuiescence(sim.get(), &policy).ok());
    Result<Relation> source_view = sim->SourceViewNow();
    EXPECT_TRUE(source_view.ok());
    return sim->warehouse_view() == *source_view;
  };
  // Not every random insert changes the view; find a seed whose single
  // update does (so losing its answer is observable), then show recovery
  // repairs the identical schedule.
  bool anomaly_found = false;
  for (uint64_t seed = 1; seed <= 24 && !anomaly_found; ++seed) {
    if (!run(seed, /*with_recovery=*/false)) {
      anomaly_found = true;
      EXPECT_TRUE(run(seed, /*with_recovery=*/true))
          << "journal replay should repair the schedule seed " << seed;
    }
  }
  EXPECT_TRUE(anomaly_found)
      << "bare restart should exhibit the lost-state anomaly";
}

// ---------------------------------------------------------------------------
// 3b. A corrupted journal record refuses to restart (checksum rejection at
// the system level).

TEST(CrashRecoveryTest, CorruptedJournalRecordFailsRestart) {
  const uint64_t kSeed = 21;
  std::unique_ptr<Simulation> sim = MakeCrashSim(
      Algorithm::kEca, kSeed, RecoveryOptionsFor(kSeed, /*faulty=*/false, 0));
  RandomPolicy policy(kSeed);
  // Run a while so the warehouse inbound journal has records to damage.
  for (int i = 0; i < 12; ++i) {
    SimAction a = policy.Next(*sim);
    if (a == SimAction::kNone) {
      break;
    }
    ASSERT_TRUE(sim->Step(a).ok());
  }
  const auto& inbound = sim->warehouse_log().inbound;
  ASSERT_GT(inbound.size(), 0u) << "test needs journaled inbound frames";
  sim->mutable_warehouse_log().inbound.CorruptRecordForTest(
      inbound.begin_lsn());
  ASSERT_TRUE(sim->CrashWarehouse().ok());
  Status restart = sim->RestartWarehouse();
  EXPECT_EQ(restart.code(), StatusCode::kInternal)
      << "restart must refuse a journal that fails checksum validation: "
      << restart;
}

// ---------------------------------------------------------------------------
// 3c. Guard rails: recovery and crashes require the reliable transport.

TEST(CrashRecoveryTest, RecoveryWithoutReliableTransportIsRejected) {
  Random rng(2);
  Result<Workload> w = MakeExample6Workload({8, 2}, &rng);
  ASSERT_TRUE(w.ok()) << w.status();
  Result<std::unique_ptr<ViewMaintainer>> maintainer =
      MakeMaintainer(Algorithm::kEca, w->view, 1);
  ASSERT_TRUE(maintainer.ok());
  SimulationOptions options;
  options.recovery.enabled = true;  // but fault/reliable off
  Result<std::unique_ptr<Simulation>> sim = Simulation::Create(
      w->initial, w->view, std::move(*maintainer), options);
  EXPECT_EQ(sim.status().code(), StatusCode::kInvalidArgument);
}

TEST(CrashRecoveryTest, CrashOnPassthroughChannelIsRejected) {
  Random rng(2);
  Result<Workload> w = MakeExample6Workload({8, 2}, &rng);
  ASSERT_TRUE(w.ok()) << w.status();
  std::unique_ptr<Simulation> sim =
      MustMakeSim(w->initial, w->view, Algorithm::kEca);
  EXPECT_EQ(sim->CrashWarehouse().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(sim->CrashSource().code(), StatusCode::kFailedPrecondition);
  EXPECT_FALSE(sim->CanCrashWarehouse());
  EXPECT_FALSE(sim->CanCrashSource());
}

// ---------------------------------------------------------------------------
// 3d. Zero-impact default: with recovery enabled but no crash, every
// observable counter matches the recovery-disabled run bit for bit —
// journaling is pure bookkeeping off the hot path.

TEST(CrashRecoveryTest, RecoveryWithoutCrashesIsObservablyIdentical) {
  auto run = [](bool recovery) {
    Random rng(13);
    Result<Workload> w = MakeExample6Workload({10, 2}, &rng);
    EXPECT_TRUE(w.ok()) << w.status();
    Result<std::vector<Update>> script = MakeMixedUpdates(*w, 6, 0.3, &rng);
    EXPECT_TRUE(script.ok()) << script.status();
    SimulationOptions options;
    options.fault = ReliableTransport(/*seed=*/77, /*faulty=*/true);
    options.recovery.enabled = recovery;
    options.recovery.checkpoint_every = recovery ? 2 : 0;
    std::unique_ptr<Simulation> sim =
        MustMakeSim(w->initial, w->view, Algorithm::kEca, options);
    sim->SetUpdateScript(*script);
    RandomPolicy policy(13);
    EXPECT_TRUE(RunToQuiescence(sim.get(), &policy).ok());
    return sim;
  };
  std::unique_ptr<Simulation> with = run(true);
  std::unique_ptr<Simulation> without = run(false);
  EXPECT_TRUE(with->warehouse_view() == without->warehouse_view());
  EXPECT_EQ(with->meter().ToString(), without->meter().ToString());
  EXPECT_EQ(with->transport_stats().ToString(),
            without->transport_stats().ToString());
  EXPECT_EQ(with->state_log().warehouse_view_states.size(),
            without->state_log().warehouse_view_states.size());
  EXPECT_EQ(with->state_log().source_view_states.size(),
            without->state_log().source_view_states.size());
  // And the recovery run's journals really were populated (the identity
  // above is not vacuous).
  EXPECT_GT(with->warehouse_log().inbound.end_lsn(), 0u);
  EXPECT_GT(with->source_log().inbound.end_lsn(), 0u);
}

// ---------------------------------------------------------------------------
// 4. Replicated tier: crash a replica in the MIDDLE of its journal-replay
// catch-up. The rejoin must restart from the checkpoint + journal without
// losing or double-applying records, the replica must never serve a read
// while its view is partially replayed, and the group must end strongly
// convergent.

TEST(CrashRecoveryTest, ReplicaCrashMidCatchUpRejoinsStronglyConsistent) {
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    Random rng(seed);
    Result<Workload> w = MakeExample6Workload({30, 3}, &rng);
    ASSERT_TRUE(w.ok()) << w.status();
    Result<std::vector<Update>> script = MakeRoundRobinInserts(*w, 10, &rng);
    ASSERT_TRUE(script.ok()) << script.status();

    SimulationOptions sim_options;
    sim_options.fault = ReliableTransport(seed, /*faulty=*/true);
    ReplicationOptions rep;
    rep.num_replicas = 3;
    rep.heartbeat_rounds = 30;
    rep.heartbeat_loss_rate = 0.0;
    rep.checkpoint_every = 4;
    rep.catch_up_batch = 1;  // smallest steps: the widest crash window
    Result<std::unique_ptr<ReplicatedSimulation>> made =
        ReplicatedSimulation::Create(w->initial, w->view, Algorithm::kEca,
                                     sim_options, rep);
    ASSERT_TRUE(made.ok()) << made.status();
    ReplicatedSimulation* sim = made->get();
    sim->SetUpdateScript(*script);

    // No replica may serve a read unless it is up and in the group.
    sim->SetReadObserver([&](int, const ReadResult& result,
                             const Replica* replica) {
      if (!result.served) {
        return;
      }
      EXPECT_TRUE(replica->up());
      EXPECT_EQ(replica->membership(), ReplicaMembership::kInGroup)
          << "a catching-up replica served a partially-replayed view";
    });

    RandomReplicatedPolicy policy(seed);
    const int victim = 1;
    int actions = 0;
    enum { kBeforeFirstCrash, kCatchingUp, kDone } phase = kBeforeFirstCrash;
    for (int guard = 0;; ++guard) {
      ASSERT_LT(guard, 2000000) << "seed " << seed << " failed to quiesce";
      if (phase == kBeforeFirstCrash && actions >= 12) {
        // First crash, mid-run: lose volatile state while traffic flies.
        ASSERT_TRUE(sim->CrashReplica(victim).ok());
        ASSERT_TRUE(sim->RejoinReplica(victim).ok());
        // Advance the head so catch-up has a real gap to close, then take
        // a FEW catch-up steps — deliberately not all of them.
        while (sim->replica(victim).applied_lsn() + 2 >=
                   sim->sequencer().head_lsn() &&
               sim->CanLeadStep()) {
          ASSERT_TRUE(sim->StepLeadStep().ok());
        }
        if (sim->CanCatchUp(victim)) {
          ASSERT_TRUE(sim->StepCatchUp(victim).ok());
        }
        if (sim->replica(victim).membership() ==
            ReplicaMembership::kCatchingUp) {
          // Crash it again, mid-catch-up: some records applied past the
          // checkpoint, some journaled-but-unapplied.
          ASSERT_TRUE(sim->CrashReplica(victim).ok());
          ASSERT_TRUE(sim->RejoinReplica(victim).ok());
        }
        phase = kCatchingUp;
        continue;
      }
      if (sim->Quiescent()) {
        break;
      }
      RepAction action = policy.Next(*sim);
      ASSERT_NE(action.kind, RepAction::Kind::kNone) << "seed " << seed;
      ASSERT_TRUE(sim->Step(action).ok()) << "seed " << seed;
      ++actions;
    }

    // Strong convergence: the twice-crashed replica's view is byte-equal
    // to the lead's and to every peer's.
    ReplicaConvergenceReport conv = sim->ConvergenceNow();
    EXPECT_TRUE(conv.converged) << "seed " << seed << ": " << conv.ToString();
    for (int r = 0; r < sim->num_replicas(); ++r) {
      EXPECT_EQ(sim->replica(r).view(), sim->lead().warehouse_view())
          << "seed " << seed << " replica " << r;
    }
  }
}

// ---------------------------------------------------------------------------
// 5. Multi-view shared maintenance under crash/restart: three children of
// mixed algorithms (ECA-Key + two ECA, one a structural twin of the keyed
// view) behind one warehouse, crashed at every sampled schedule point of
// both sites, on clean and faulty reliable transports, with dedup on and
// off. Every run must converge every child to the source truth, and the
// dedup-on finals must be tuple-for-tuple identical to the dedup-off
// baseline at the SAME (site, crash point) — shared maintenance may not
// change what a crash can observe or lose.

struct MultiViewCrashSetup {
  Workload workload;
  std::vector<ViewDefinitionPtr> views;
  std::vector<Update> updates;
};

MultiViewCrashSetup MakeMultiViewCrashSetup(uint64_t seed) {
  Random rng(seed);
  Result<Workload> w = MakeKeyedWorkload({10, 3}, &rng);
  EXPECT_TRUE(w.ok()) << w.status();
  Result<std::vector<Update>> updates =
      MakeMixedUpdates(*w, /*k=*/5, /*delete_fraction=*/0.35, &rng);
  EXPECT_TRUE(updates.ok()) << updates.status();
  MultiViewCrashSetup s{std::move(*w), {}, std::move(*updates)};
  s.views = {
      s.workload.view,  // EcaKey
      // Structural twin of the keyed view: exercises cross-child dedup.
      *ViewDefinition::NaturalJoin("V1", s.workload.defs, {"W", "Y"}),
      *ViewDefinition::NaturalJoin("V2", s.workload.defs, {"W"}),
  };
  return s;
}

std::unique_ptr<Simulation> MakeMultiViewCrashSim(
    const MultiViewCrashSetup& s, bool dedup, const SimulationOptions& options,
    MultiViewWarehouse** multi_out) {
  std::vector<std::unique_ptr<ViewMaintainer>> children;
  children.push_back(std::make_unique<EcaKey>(s.views[0]));
  children.push_back(std::make_unique<Eca>(s.views[1]));
  children.push_back(std::make_unique<Eca>(s.views[2]));
  MultiViewOptions mv;
  mv.dedup = dedup;
  auto multi = std::make_unique<MultiViewWarehouse>(std::move(children), mv);
  *multi_out = multi.get();
  Result<std::unique_ptr<Simulation>> sim = Simulation::Create(
      s.workload.initial, s.views[0], std::move(multi), options);
  EXPECT_TRUE(sim.ok()) << sim.status();
  (*sim)->SetUpdateScript(s.updates);
  return std::move(*sim);
}

TEST(MultiViewCrashTest, SharedMaintenanceSurvivesEverySchedulePoint) {
  constexpr uint64_t kSeed = 9;
  MultiViewCrashSetup s = MakeMultiViewCrashSetup(kSeed);
  for (bool faulty : {false, true}) {
    for (CrashSite site : {CrashSite::kWarehouse, CrashSite::kSource}) {
      for (int crash_at = 0; crash_at <= 30; crash_at += 5) {
        SCOPED_TRACE(::testing::Message()
                     << "faulty=" << faulty << " site="
                     << static_cast<int>(site) << " at=" << crash_at);
        std::vector<Relation> baseline;
        for (bool dedup : {false, true}) {
          MultiViewWarehouse* multi = nullptr;
          std::unique_ptr<Simulation> sim = MakeMultiViewCrashSim(
              s, dedup,
              RecoveryOptionsFor(kSeed, faulty, /*checkpoint_every=*/2),
              &multi);
          ASSERT_NE(multi, nullptr);
          CrashRunResult r = RunWithCrashAt(sim.get(), kSeed, site, crash_at,
                                            /*downtime=*/3);
          ASSERT_TRUE(r.run.ok()) << "dedup=" << dedup << ": " << r.run;
          EXPECT_TRUE(r.report.strongly_consistent) << "dedup=" << dedup;
          EXPECT_TRUE(r.converged) << "dedup=" << dedup;
          std::vector<Relation> finals;
          for (size_t i = 0; i < s.views.size(); ++i) {
            Result<Relation> expected =
                EvaluateView(s.views[i], sim->source_catalog());
            ASSERT_TRUE(expected.ok()) << expected.status();
            EXPECT_EQ(multi->child(i).view_contents(), *expected)
                << "child " << i << " dedup=" << dedup;
            finals.push_back(multi->child(i).view_contents());
          }
          if (!dedup) {
            baseline = std::move(finals);
          } else {
            for (size_t i = 0; i < baseline.size(); ++i) {
              EXPECT_EQ(finals[i], baseline[i])
                  << "child " << i
                  << " diverges under shared maintenance after the crash";
            }
          }
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// 6. The matrix over REAL files and an asymmetric wire: every journal
// backed by on-disk WAL segments (JournalBackend::kFile), under a lossy
// uplink / clean downlink split (SimulationOptions::fault_up) with a
// further ack-path asymmetry inside the uplink. The durable medium and the
// fault schedule change; every consistency verdict must not.

SimulationOptions AsymmetricFileOptions(uint64_t seed, int checkpoint_every) {
  SimulationOptions options;
  // Downlink (source -> warehouse answers): clean but slow.
  options.fault = ReliableTransport(seed, /*faulty=*/false);
  options.fault.max_delay_ticks = 1;
  // Uplink (warehouse -> source queries): lossy, with its own ack path
  // cleaner than its data path.
  FaultConfig up = ReliableTransport(seed * 977 + 5, /*faulty=*/true);
  up.drop_rate = 0.35;
  up.ack.drop_rate = 0.1;
  up.ack.max_delay_ticks = 1;
  options.fault_up = up;
  options.recovery.enabled = true;
  options.recovery.checkpoint_every = checkpoint_every;
  options.recovery.backend = JournalBackend::kFile;
  // Small segments + batched group commit so crash schedules cross segment
  // rotations and flush boundaries, not just one growing file.
  options.recovery.wal.segment_bytes = 1 << 12;
  options.recovery.wal.flush_appends = 4;
  return options;
}

TEST(FileBackedCrashMatrixTest, EverySampledSchedulePointOverRealWalFiles) {
  constexpr uint64_t kSeed = 19;
  int64_t total_drops = 0;
  for (Algorithm algorithm : {Algorithm::kEca, Algorithm::kEcaKey}) {
    for (CrashSite site : {CrashSite::kWarehouse, CrashSite::kSource}) {
      for (int crash_at = 0; crash_at <= 36; crash_at += 4) {
        std::unique_ptr<Simulation> sim = MakeCrashSim(
            algorithm, kSeed, AsymmetricFileOptions(kSeed, /*checkpoint=*/2),
            /*updates=*/4);
        CrashRunResult r =
            RunWithCrashAt(sim.get(), kSeed, site, crash_at, /*downtime=*/3);
        ASSERT_TRUE(r.run.ok())
            << "site=" << static_cast<int>(site) << " at=" << crash_at
            << ": " << r.run;
        EXPECT_TRUE(r.report.strongly_consistent)
            << "site=" << static_cast<int>(site) << " at=" << crash_at;
        EXPECT_TRUE(r.converged)
            << "site=" << static_cast<int>(site) << " at=" << crash_at;
        // The run really went through the disk: records were appended and
        // group commit fsynced them in batches.
        const WalStats wal = sim->wal_stats();
        EXPECT_GT(wal.appends, 0);
        EXPECT_GT(wal.fsyncs, 0);
        EXPECT_GT(wal.appended_bytes, 0);
        // A single short schedule can legitimately see zero drops (few
        // uplink queries, lucky coins); the matrix as a whole must not.
        total_drops += sim->transport_stats().link.frames_dropped;
      }
    }
  }
  EXPECT_GT(total_drops, 0) << "the lossy uplink never dropped anything";
}

TEST(FileBackedCrashMatrixTest, RandomizedSeedsSurviveWalAndAsymmetry) {
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    Random rng(seed * 104729 + 17);
    const CrashSite site =
        rng.Uniform(2) == 0 ? CrashSite::kWarehouse : CrashSite::kSource;
    const int crash_at = static_cast<int>(rng.Uniform(30));
    const int downtime = static_cast<int>(rng.Uniform(6));
    CrashRunResult r = RunWithCrashAt(
        MakeCrashSim(Algorithm::kEca, seed,
                     AsymmetricFileOptions(seed, static_cast<int>(seed % 4))),
        seed, site, crash_at, downtime);
    ASSERT_TRUE(r.run.ok()) << "seed " << seed << ": " << r.run;
    EXPECT_TRUE(r.report.strongly_consistent) << "seed " << seed;
    EXPECT_TRUE(r.converged) << "seed " << seed;
  }
}

TEST(FileBackedCrashMatrixTest, FileBackendMatchesMemoryBackendObservables) {
  // The WAL is a durability layer, not a behavior change: the same seeded
  // run over kFile and kMemory journals must produce identical views and
  // identical meters.
  auto run = [](JournalBackend backend) {
    const uint64_t kSeed = 33;
    SimulationOptions options = AsymmetricFileOptions(kSeed, 2);
    options.recovery.backend = backend;
    std::unique_ptr<Simulation> sim =
        MakeCrashSim(Algorithm::kEca, kSeed, options);
    RandomPolicy policy(kSeed);
    EXPECT_TRUE(RunToQuiescence(sim.get(), &policy).ok());
    return sim;
  };
  std::unique_ptr<Simulation> file = run(JournalBackend::kFile);
  std::unique_ptr<Simulation> memory = run(JournalBackend::kMemory);
  EXPECT_TRUE(file->warehouse_view() == memory->warehouse_view());
  EXPECT_EQ(file->meter().ToString(), memory->meter().ToString());
  EXPECT_EQ(file->transport_stats().ToString(),
            memory->transport_stats().ToString());
  EXPECT_GT(file->wal_stats().appends, 0);
  EXPECT_EQ(memory->wal_stats().appends, 0);
}

TEST(FileBackedCrashMatrixTest, OwnedWalDirectoryIsRemovedOnDestruction) {
  std::string dir;
  {
    std::unique_ptr<Simulation> sim =
        MakeCrashSim(Algorithm::kEca, 7, AsymmetricFileOptions(7, 0));
    dir = sim->wal_dir();
    ASSERT_FALSE(dir.empty());
    RandomPolicy policy(7);
    ASSERT_TRUE(RunToQuiescence(sim.get(), &policy).ok());
    EXPECT_TRUE(std::filesystem::exists(dir));
  }
  EXPECT_FALSE(std::filesystem::exists(dir))
      << "the simulation leaked its temp WAL directory";
}

TEST(FileBackedCrashMatrixTest, GuardRails) {
  Random rng(2);
  Result<Workload> w = MakeExample6Workload({8, 2}, &rng);
  ASSERT_TRUE(w.ok()) << w.status();
  // kFile without recovery makes no sense: there is nothing to journal.
  {
    Result<std::unique_ptr<ViewMaintainer>> m =
        MakeMaintainer(Algorithm::kEca, w->view, 1);
    ASSERT_TRUE(m.ok());
    SimulationOptions options;
    options.fault = ReliableTransport(1, false);
    options.recovery.backend = JournalBackend::kFile;
    EXPECT_EQ(Simulation::Create(w->initial, w->view, std::move(*m), options)
                  .status()
                  .code(),
              StatusCode::kInvalidArgument);
  }
  // fault_up must agree with fault on enabled and reliable: a reliable
  // downlink with a raw uplink would break the recovery protocol's
  // sequence-number bookkeeping on one side only.
  {
    Result<std::unique_ptr<ViewMaintainer>> m =
        MakeMaintainer(Algorithm::kEca, w->view, 1);
    ASSERT_TRUE(m.ok());
    SimulationOptions options;
    options.fault = ReliableTransport(1, false);
    FaultConfig up;
    up.enabled = true;  // but reliable = false, disagreeing with fault
    options.fault_up = up;
    EXPECT_EQ(Simulation::Create(w->initial, w->view, std::move(*m), options)
                  .status()
                  .code(),
              StatusCode::kInvalidArgument);
  }
}

}  // namespace
}  // namespace wvm
