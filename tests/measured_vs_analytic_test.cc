// Integration tests tying the full simulation (source storage + channels +
// algorithms) to the Appendix D analysis: measured messages, bytes and I/O
// under the best-case and worst-case interleavings must land on (or within
// a modeled tolerance of) the closed forms behind Figures 6.2-6.5.
#include <gtest/gtest.h>

#include "analytic/cost_model.h"
#include "test_util.h"
#include "workload/generator.h"

namespace wvm {
namespace {

struct RunResult {
  int64_t messages;
  int64_t bytes;
  int64_t io;
};

// Runs `algorithm` over the Example 6 workload with k round-robin inserts.
RunResult RunCase(Algorithm algorithm, int64_t k, bool worst_case,
                  PhysicalScenario scenario, int rv_period = 1,
                  bool correlated = false, uint64_t seed = 17,
                  int64_t cardinality = 100) {
  Random rng(seed);
  Result<Workload> w = MakeExample6Workload({cardinality, 4}, &rng);
  EXPECT_TRUE(w.ok());
  Result<std::vector<Update>> updates =
      correlated ? MakeCorrelatedInserts(*w, k, &rng)
                 : MakeRoundRobinInserts(*w, k, &rng);
  EXPECT_TRUE(updates.ok());

  SimulationOptions options;
  options.bytes_per_tuple = 4;  // S of Table 1
  options.physical.scenario = scenario;
  options.physical.tuples_per_block = 20;
  if (scenario == PhysicalScenario::kIndexedMemory) {
    options.indexes = w->scenario1_indexes;
  }
  std::unique_ptr<Simulation> sim =
      MustMakeSim(w->initial, w->view, algorithm, options, rv_period);
  sim->SetUpdateScript(*updates);
  Status run;
  if (worst_case) {
    WorstCasePolicy policy;
    run = RunToQuiescence(sim.get(), &policy);
  } else {
    BestCasePolicy policy;
    run = RunToQuiescence(sim.get(), &policy);
  }
  EXPECT_TRUE(run.ok()) << run;
  return RunResult{sim->meter().messages(), sim->meter().bytes_transferred(),
                   sim->io_stats().page_reads};
}

analytic::Params Defaults() { return analytic::Params(); }

TEST(MeasuredVsAnalyticTest, MessageCountsAreExact) {
  for (int64_t k : {3, 12, 30}) {
    RunResult eca = RunCase(Algorithm::kEca, k, /*worst_case=*/true,
                            PhysicalScenario::kIndexedMemory);
    EXPECT_EQ(eca.messages, analytic::MessagesEca(k)) << "k=" << k;
    for (int s : {1, 3}) {
      RunResult rv = RunCase(Algorithm::kRv, k, /*worst_case=*/false,
                             PhysicalScenario::kIndexedMemory, s);
      EXPECT_EQ(rv.messages, analytic::MessagesRv(k, s))
          << "k=" << k << " s=" << s;
    }
  }
}

TEST(MeasuredVsAnalyticTest, EcaBestCaseBytesNearAnalytic) {
  // B_ECABest = k*S*sigma*J^2; sigma is realized by the random W>Z filter,
  // so allow +-40%.
  const int64_t k = 30;
  RunResult r = RunCase(Algorithm::kEca, k, /*worst_case=*/false,
                        PhysicalScenario::kIndexedMemory);
  const double expected = analytic::BytesEcaBest(Defaults(), k);
  EXPECT_GT(r.bytes, 0.6 * expected);
  EXPECT_LT(r.bytes, 1.4 * expected);
}

TEST(MeasuredVsAnalyticTest, RvBytesScaleWithViewSize) {
  // One recomputation ships the whole view: S*sigma*C*J^2 = 3200 expected.
  const int64_t k = 12;
  RunResult best = RunCase(Algorithm::kRv, k, /*worst_case=*/false,
                           PhysicalScenario::kIndexedMemory, /*s=*/k);
  const double expected = analytic::BytesRvBest(Defaults(), k);
  EXPECT_GT(best.bytes, 0.6 * expected);
  EXPECT_LT(best.bytes, 1.4 * expected);

  // Recomputing after every update costs ~k times that.
  RunResult worst = RunCase(Algorithm::kRv, k, /*worst_case=*/false,
                            PhysicalScenario::kIndexedMemory, /*s=*/1);
  EXPECT_GT(worst.bytes, 0.8 * k * best.bytes / 1.4);
}

TEST(MeasuredVsAnalyticTest, EcaWorstCaseCompensationIsSuperlinear) {
  // With correlated (hot-spot) inserts every cross-relation pair joins, so
  // the compensation traffic grows quadratically as in B_ECAWorst.
  const int64_t k1 = 12;
  const int64_t k2 = 24;
  RunResult b1 = RunCase(Algorithm::kEca, k1, /*worst_case=*/true,
                         PhysicalScenario::kIndexedMemory, 1,
                         /*correlated=*/true);
  RunResult b2 = RunCase(Algorithm::kEca, k2, /*worst_case=*/true,
                         PhysicalScenario::kIndexedMemory, 1,
                         /*correlated=*/true);
  // Doubling k must much more than double the bytes (quadratic part).
  EXPECT_GT(b2.bytes, 2.6 * b1.bytes);
  // And the same stream under the best case is far cheaper.
  RunResult best = RunCase(Algorithm::kEca, k2, /*worst_case=*/false,
                           PhysicalScenario::kIndexedMemory, 1,
                           /*correlated=*/true);
  EXPECT_LT(best.bytes, b2.bytes);
}

TEST(MeasuredVsAnalyticTest, Scenario1EcaBestIoNearAnalytic) {
  // Round-robin inserts, answers before next update: IO ~ k(J+1) (k/3
  // repetitions of the 1+J, 2, 2J plans). The accumulated inserts perturb
  // block alignment and local join factors — the drift the paper's
  // constant-parameter assumption (Section 6.2, assumption 5) rounds away
  // — so the measured count sits slightly above the closed form.
  for (int64_t k : {3, 12, 30}) {
    RunResult r = RunCase(Algorithm::kEca, k, /*worst_case=*/false,
                          PhysicalScenario::kIndexedMemory);
    const double expected = analytic::IoEcaBestS1(Defaults(), k);
    EXPECT_GE(r.io, static_cast<int64_t>(expected)) << "k=" << k;
    EXPECT_LE(r.io, static_cast<int64_t>(1.2 * expected)) << "k=" << k;
  }
}

TEST(MeasuredVsAnalyticTest, Scenario1EcaWorstIoMatchesExactPairCount) {
  // Worst case: every compensating (doubly-bound) term costs exactly one
  // probe. With round-robin relations the number of cross-relation pairs
  // is sum_j ((j-1) - floor((j-1)/3)); the paper's k(k-1)/3 is the
  // uniform-random expectation of the same quantity.
  for (int64_t k : {6, 12, 18}) {
    RunResult r = RunCase(Algorithm::kEca, k, /*worst_case=*/true,
                          PhysicalScenario::kIndexedMemory);
    int64_t cross_pairs = 0;
    for (int64_t j = 1; j <= k; ++j) {
      cross_pairs += (j - 1) - (j - 1) / 3;
    }
    const double expected = analytic::IoEcaBestS1(Defaults(), k) +
                            static_cast<double>(cross_pairs);
    EXPECT_GE(r.io, static_cast<int64_t>(expected)) << "k=" << k;
    // Drift is larger than in the best case: under the worst-case order
    // every plan runs against the fully-grown relations.
    EXPECT_LE(r.io, static_cast<int64_t>(1.35 * expected)) << "k=" << k;
    // The paper's expectation-based form (2(j-1)/3 cross pairs per
    // update) is in the same neighbourhood.
    EXPECT_NEAR(static_cast<double>(r.io),
                analytic::IoEcaWorstS1(Defaults(), k),
                0.45 * analytic::IoEcaWorstS1(Defaults(), k));
  }
}

TEST(MeasuredVsAnalyticTest, Scenario1RvIoIsExact) {
  // C = 94 keeps every relation at I = 5 blocks throughout the 12-insert
  // stream (94 + 4 rows < 101), so RV's scans match the closed forms
  // exactly.
  const int64_t k = 12;
  RunResult once = RunCase(Algorithm::kRv, k, /*worst_case=*/false,
                           PhysicalScenario::kIndexedMemory, /*s=*/k,
                           /*correlated=*/false, /*seed=*/17, /*c=*/94);
  EXPECT_EQ(once.io, static_cast<int64_t>(analytic::IoRvBestS1(Defaults(), k)));
  RunResult every = RunCase(Algorithm::kRv, k, /*worst_case=*/false,
                            PhysicalScenario::kIndexedMemory, /*s=*/1,
                            /*correlated=*/false, /*seed=*/17, /*c=*/94);
  EXPECT_EQ(every.io,
            static_cast<int64_t>(analytic::IoRvWorstS1(Defaults(), k)));
}

TEST(MeasuredVsAnalyticTest, Scenario2IoMatchesOperationalForms) {
  // The storage simulator counts outer block loads that the paper's
  // leading-term derivation drops; the operational forms include them.
  // C = 94 so the k/3 = 2 inserts per relation do not bump the block
  // counts (I = 5, I' = 3 throughout, as with the paper's C = 100).
  const int64_t k = 6;
  analytic::Params p = Defaults();

  RunResult rv = RunCase(Algorithm::kRv, k, /*worst_case=*/false,
                         PhysicalScenario::kNestedLoopLimited, /*s=*/k,
                         /*correlated=*/false, /*seed=*/17, /*c=*/94);
  EXPECT_EQ(rv.io,
            static_cast<int64_t>(analytic::IoRecomputeS2Operational(p)));

  RunResult eca = RunCase(Algorithm::kEca, k, /*worst_case=*/false,
                          PhysicalScenario::kNestedLoopLimited, 1,
                          /*correlated=*/false, /*seed=*/17, /*c=*/94);
  EXPECT_EQ(eca.io,
            k * static_cast<int64_t>(
                    analytic::IoTwoUnboundTermS2Operational(p)));
}

TEST(MeasuredVsAnalyticTest, Scenario2WorstCaseAddsScanPerCrossPair) {
  const int64_t k = 6;
  analytic::Params p = Defaults();
  RunResult r = RunCase(Algorithm::kEca, k, /*worst_case=*/true,
                        PhysicalScenario::kNestedLoopLimited, 1,
                        /*correlated=*/false, /*seed=*/17, /*c=*/94);
  int64_t cross_pairs = 0;
  for (int64_t j = 1; j <= k; ++j) {
    cross_pairs += (j - 1) - (j - 1) / 3;
  }
  const int64_t expected =
      k * static_cast<int64_t>(analytic::IoTwoUnboundTermS2Operational(p)) +
      cross_pairs * static_cast<int64_t>(p.I());
  EXPECT_EQ(r.io, expected);
}

TEST(MeasuredVsAnalyticTest, WhoWinsMatchesFigure63) {
  // The qualitative claim of Figure 6.3 at C=100: for small k ECA ships
  // far fewer bytes than recompute-once RV; around the crossover RV wins.
  RunResult eca_small = RunCase(Algorithm::kEca, 12, false,
                                PhysicalScenario::kIndexedMemory);
  RunResult rv_small = RunCase(Algorithm::kRv, 12, false,
                               PhysicalScenario::kIndexedMemory, /*s=*/12);
  EXPECT_LT(eca_small.bytes, rv_small.bytes / 4);

  // Near the analytic crossover (k = C = 100) the gap collapses; by then
  // accumulated inserts have also grown the view, so we assert same order
  // of magnitude rather than a strict win.
  RunResult eca_big = RunCase(Algorithm::kEca, 120, false,
                              PhysicalScenario::kIndexedMemory);
  RunResult rv_big = RunCase(Algorithm::kRv, 120, false,
                             PhysicalScenario::kIndexedMemory, /*s=*/120);
  EXPECT_GT(eca_big.bytes, rv_big.bytes / 2);
}

TEST(MeasuredVsAnalyticTest, WhoWinsMatchesFigure64) {
  // Scenario 1 I/O: crossover near k=3 (ECA wins below, RV-once above).
  RunResult eca2 = RunCase(Algorithm::kEca, 2, false,
                           PhysicalScenario::kIndexedMemory);
  RunResult rv2 = RunCase(Algorithm::kRv, 2, false,
                          PhysicalScenario::kIndexedMemory, /*s=*/2);
  EXPECT_LT(eca2.io, rv2.io);
  RunResult eca12 = RunCase(Algorithm::kEca, 12, false,
                            PhysicalScenario::kIndexedMemory);
  RunResult rv12 = RunCase(Algorithm::kRv, 12, false,
                           PhysicalScenario::kIndexedMemory, /*s=*/12);
  EXPECT_GT(eca12.io, rv12.io);
}

}  // namespace
}  // namespace wvm
