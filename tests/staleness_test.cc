// Unit + integration tests for the staleness (visibility lag) metric.
#include "consistency/staleness.h"

#include <gtest/gtest.h>

#include "test_util.h"
#include "workload/generator.h"

namespace wvm {
namespace {

Relation Rel(std::initializer_list<int64_t> values) {
  Relation r(Schema::Ints({"a"}));
  for (int64_t v : values) {
    r.Insert(Tuple::Ints({v}));
  }
  return r;
}

TEST(StalenessTest, ImmediateVisibilityHasZeroLag) {
  StateLog log;
  log.RecordSourceState(Rel({}), 0);
  log.RecordWarehouseState(Rel({}), 0);
  log.RecordSourceState(Rel({1}), 1);
  log.RecordWarehouseState(Rel({1}), 1);
  StalenessReport r = MeasureStaleness(log);
  EXPECT_DOUBLE_EQ(r.coverage, 1.0);
  EXPECT_DOUBLE_EQ(r.mean_lag, 0.0);
  EXPECT_EQ(r.max_lag, 0);
}

TEST(StalenessTest, LagCountsInterveningEvents) {
  StateLog log;
  log.RecordSourceState(Rel({}), 0);
  log.RecordWarehouseState(Rel({}), 0);
  log.RecordSourceState(Rel({1}), 1);
  // Warehouse catches up 4 events later.
  log.RecordWarehouseState(Rel({}), 3);
  log.RecordWarehouseState(Rel({1}), 5);
  StalenessReport r = MeasureStaleness(log);
  ASSERT_EQ(r.lags.size(), 2u);
  EXPECT_EQ(r.lags[0], 0);
  EXPECT_EQ(r.lags[1], 4);
  EXPECT_EQ(r.max_lag, 4);
}

TEST(StalenessTest, SkippedStatesLowerCoverage) {
  StateLog log;
  log.RecordSourceState(Rel({}), 0);
  log.RecordWarehouseState(Rel({}), 0);
  log.RecordSourceState(Rel({1}), 1);     // never shown
  log.RecordSourceState(Rel({1, 2}), 2);  // shown late
  log.RecordWarehouseState(Rel({1, 2}), 6);
  StalenessReport r = MeasureStaleness(log);
  EXPECT_EQ(r.lags[1], -1);
  EXPECT_EQ(r.lags[2], 4);
  EXPECT_NEAR(r.coverage, 2.0 / 3.0, 1e-9);
}

TEST(StalenessTest, EmptyLogIsZero) {
  StalenessReport r = MeasureStaleness(StateLog());
  EXPECT_DOUBLE_EQ(r.coverage, 0.0);
  EXPECT_TRUE(r.lags.empty());
}

TEST(StalenessTest, CompleteAlgorithmsCoverEverything) {
  Random rng(4);
  Result<Workload> w = MakeExample6Workload({20, 2}, &rng);
  ASSERT_TRUE(w.ok());
  Result<std::vector<Update>> updates = MakeMixedUpdates(*w, 12, 0.3, &rng);
  ASSERT_TRUE(updates.ok());
  for (Algorithm a : {Algorithm::kSc, Algorithm::kLca}) {
    std::unique_ptr<Simulation> sim =
        MustMakeSim(w->initial, w->view, a);
    sim->SetUpdateScript(*updates);
    RandomPolicy policy(4);
    ASSERT_TRUE(RunToQuiescence(sim.get(), &policy).ok());
    StalenessReport r = MeasureStaleness(sim->state_log());
    EXPECT_DOUBLE_EQ(r.coverage, 1.0) << AlgorithmName(a);
  }
}

TEST(StalenessTest, ScSeesUpdatesFasterThanLca) {
  // SC applies deltas on notification arrival; LCA must wait for its
  // query round trips. Same stream, same interleaving: SC's lag <= LCA's.
  Random rng(5);
  Result<Workload> w = MakeExample6Workload({20, 2}, &rng);
  ASSERT_TRUE(w.ok());
  Result<std::vector<Update>> updates = MakeMixedUpdates(*w, 12, 0.3, &rng);
  ASSERT_TRUE(updates.ok());
  auto lag = [&](Algorithm a) {
    std::unique_ptr<Simulation> sim = MustMakeSim(w->initial, w->view, a);
    sim->SetUpdateScript(*updates);
    RandomPolicy policy(5);
    EXPECT_TRUE(RunToQuiescence(sim.get(), &policy).ok());
    return MeasureStaleness(sim->state_log()).mean_lag;
  };
  EXPECT_LE(lag(Algorithm::kSc), lag(Algorithm::kLca));
}

}  // namespace
}  // namespace wvm
