// The reproduction certificate: one test file asserting, in a single
// place, every headline quantitative claim of the paper's evaluation
// section. Each claim is also covered in depth elsewhere; this file is the
// at-a-glance statement that the reproduction holds (EXPERIMENTS.md in
// executable form).
#include <gtest/gtest.h>

#include "analytic/advisor.h"
#include "test_util.h"
#include "workload/generator.h"

namespace wvm {
namespace {

using analytic::Params;

TEST(PaperReproductionTest, Section61MessageFormulas) {
  // M_RV = 2*ceil(k/s) in [2, 2k]; M_ECA = 2k.
  EXPECT_EQ(analytic::MessagesRv(100, 100), 2);
  EXPECT_EQ(analytic::MessagesRv(100, 1), 200);
  EXPECT_EQ(analytic::MessagesEca(100), 200);
}

TEST(PaperReproductionTest, Figure62EcaWinsExceptTinyRelations) {
  Params p;
  for (double c : {10.0, 20.0, 100.0}) {
    p.C = c;
    EXPECT_LT(analytic::BytesEcaWorst3(p), analytic::BytesRvBest3(p));
  }
  p.C = 3;  // the "approximately 5 tuples" regime
  EXPECT_GT(analytic::BytesEcaWorst3(p), analytic::BytesRvBest3(p));
}

TEST(PaperReproductionTest, Figure63CrossoversAt30And100) {
  analytic::Crossovers x = analytic::ComputeCrossovers(Params());
  EXPECT_DOUBLE_EQ(x.bytes_best, 100);  // "this crossover is at 100 updates"
  EXPECT_NEAR(x.bytes_worst, 30, 1);    // "when 30 or more updates"
}

TEST(PaperReproductionTest, Figure64CrossoverAt3) {
  analytic::Crossovers x = analytic::ComputeCrossovers(Params());
  EXPECT_DOUBLE_EQ(x.io_s1_best, 3);  // "k = 3 for Scenario 1"
}

TEST(PaperReproductionTest, Figure65CrossoverBetween5And8) {
  analytic::Crossovers x = analytic::ComputeCrossovers(Params());
  EXPECT_GT(x.io_s2_worst, 5);  // "5 < k < 8 for Scenario 2"
  EXPECT_LT(x.io_s2_worst, 8);
}

TEST(PaperReproductionTest, ThreeUpdateClosedForms) {
  Params p;
  // Section 6.2 / Appendix D.2.
  EXPECT_DOUBLE_EQ(analytic::BytesRvBest3(p), 3200);
  EXPECT_DOUBLE_EQ(analytic::BytesEcaBest3(p), 96);
  EXPECT_DOUBLE_EQ(analytic::BytesEcaWorst3(p), 120);
  // Appendix D.3.1/D.3.2 (I=5, I'=3).
  EXPECT_DOUBLE_EQ(analytic::IoEcaBest3S1(p), 15);
  EXPECT_DOUBLE_EQ(analytic::IoEcaWorst3S1(p), 18);
  EXPECT_DOUBLE_EQ(analytic::IoRvBest3S2(p), 125);
  EXPECT_DOUBLE_EQ(analytic::IoEcaBest3S2(p), 45);
}

TEST(PaperReproductionTest, AnomaliesExistAndEcaRepairsThem) {
  // Examples 2 and 3 end wrong under basic and right under ECA.
  for (auto maker : {MakePaperExample2, MakePaperExample3}) {
    Result<PaperExample> ex = maker();
    ASSERT_TRUE(ex.ok());
    std::unique_ptr<Simulation> basic_run = RunPaperExample(*ex);
    EXPECT_EQ(basic_run->warehouse_view(), ex->expected_algorithm_final);
    EXPECT_NE(basic_run->warehouse_view(), ex->expected_correct_final);
    ex->algorithm = "eca";
    std::unique_ptr<Simulation> eca_run = RunPaperExample(*ex);
    EXPECT_EQ(eca_run->warehouse_view(), ex->expected_correct_final);
  }
}

TEST(PaperReproductionTest, StrongConsistencyTheorem) {
  // Theorem B.1 / Appendix C, empirically: ECA and ECA-Key are strongly
  // consistent on every sampled interleaving of mixed streams.
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    Random rng(seed);
    Result<Workload> chain = MakeExample6Workload({15, 2}, &rng);
    ASSERT_TRUE(chain.ok());
    Result<std::vector<Update>> updates =
        MakeMixedUpdates(*chain, 8, 0.35, &rng);
    ASSERT_TRUE(updates.ok());
    EXPECT_TRUE(RunRandomized(chain->initial, chain->view, Algorithm::kEca,
                              *updates, seed)
                    .strongly_consistent);

    Random rng2(seed);
    Result<Workload> keyed = MakeKeyedWorkload({15, 3}, &rng2);
    ASSERT_TRUE(keyed.ok());
    Result<std::vector<Update>> keyed_updates =
        MakeMixedUpdates(*keyed, 8, 0.35, &rng2);
    ASSERT_TRUE(keyed_updates.ok());
    EXPECT_TRUE(RunRandomized(keyed->initial, keyed->view,
                              Algorithm::kEcaKey, *keyed_updates, seed)
                    .strongly_consistent);
  }
}

TEST(PaperReproductionTest, EcaPropertyThree) {
  // Section 5.6 property 3: at low update frequency ECA degenerates to
  // the basic algorithm — compensating queries appear ONLY when an answer
  // is still outstanding as the next update arrives.
  Result<PaperExample> ex = MakePaperExample4();
  ASSERT_TRUE(ex.ok());
  std::unique_ptr<Simulation> sim =
      MustMakeSim(ex->initial, ex->view, Algorithm::kEca);
  sim->SetUpdateScript(ex->updates);
  BestCasePolicy policy;
  ASSERT_TRUE(RunToQuiescence(sim.get(), &policy).ok());
  // 3 updates, 3 single-term queries: no compensation was needed.
  EXPECT_EQ(sim->meter().query_terms(), 3);
}

TEST(PaperReproductionTest, EcaKRequiresKeysAndSkipsDeleteQueries) {
  Result<PaperExample> ex5 = MakePaperExample5();
  ASSERT_TRUE(ex5.ok());
  std::unique_ptr<Simulation> sim = RunPaperExample(*ex5);
  EXPECT_EQ(sim->meter().query_messages(), 2);  // only the two inserts
  EXPECT_EQ(sim->warehouse_view(), ex5->expected_correct_final);
}

}  // namespace
}  // namespace wvm
