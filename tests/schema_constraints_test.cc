// The schema-constraints surface that replaced has_all_base_keys_:
// derivation from is_key flags, declaration/validation errors, and the
// KeysProjected predicate ECA-Key keys off.
#include "query/schema_constraints.h"

#include <gtest/gtest.h>

#include "core/eca_key.h"
#include "query/view_def.h"
#include "workload/generator.h"

namespace wvm {
namespace {

std::vector<BaseRelationDef> TwoRelations() {
  Schema r1({{"W", ValueType::kInt, /*is_key=*/true},
             {"X", ValueType::kInt, /*is_key=*/false}});
  Schema r2({{"X", ValueType::kInt, /*is_key=*/false},
             {"Y", ValueType::kInt, /*is_key=*/true}});
  return {{"r1", std::move(r1)}, {"r2", std::move(r2)}};
}

TEST(SchemaConstraintsTest, FromSchemasDerivesKeysFromFlags) {
  SchemaConstraints c = SchemaConstraints::FromSchemas(TwoRelations());
  ASSERT_NE(c.KeyOf("r1"), nullptr);
  EXPECT_EQ(c.KeyOf("r1")->attrs, std::vector<std::string>{"W"});
  ASSERT_NE(c.KeyOf("r2"), nullptr);
  EXPECT_EQ(c.KeyOf("r2")->attrs, std::vector<std::string>{"Y"});
  EXPECT_TRUE(c.foreign_keys().empty());
  EXPECT_TRUE(c.Validate(TwoRelations()).ok());
}

TEST(SchemaConstraintsTest, FromSchemasSkipsUnkeyedRelations) {
  Schema plain({{"A", ValueType::kInt, /*is_key=*/false}});
  SchemaConstraints c =
      SchemaConstraints::FromSchemas({{"r", std::move(plain)}});
  EXPECT_EQ(c.KeyOf("r"), nullptr);
  EXPECT_TRUE(c.empty());
}

TEST(SchemaConstraintsTest, DeclareKeyRejectsSecondKeyAndDuplicates) {
  SchemaConstraints c;
  EXPECT_TRUE(c.DeclareKey({"r1", {"W"}}).ok());
  EXPECT_FALSE(c.DeclareKey({"r1", {"X"}}).ok());   // second key
  EXPECT_FALSE(c.DeclareKey({"r2", {}}).ok());      // empty attrs
  EXPECT_FALSE(c.DeclareKey({"r2", {"Y", "Y"}}).ok());  // duplicated attr
}

TEST(SchemaConstraintsTest, DeclareForeignKeyShapeErrors) {
  SchemaConstraints c;
  EXPECT_FALSE(c.DeclareForeignKey({"r1", {}, "r2", {}}).ok());
  EXPECT_FALSE(c.DeclareForeignKey({"r1", {"X"}, "r2", {"X", "Y"}}).ok());
  EXPECT_FALSE(c.DeclareForeignKey({"r1", {"X"}, "r1", {"W"}}).ok());
}

TEST(SchemaConstraintsTest, ValidateCatchesUnknownNamesAndNonKeyTargets) {
  std::vector<BaseRelationDef> rels = TwoRelations();

  SchemaConstraints unknown_rel;
  ASSERT_TRUE(unknown_rel.DeclareKey({"nope", {"W"}}).ok());
  EXPECT_FALSE(unknown_rel.Validate(rels).ok());

  SchemaConstraints unknown_attr;
  ASSERT_TRUE(unknown_attr.DeclareKey({"r1", {"Q"}}).ok());
  EXPECT_FALSE(unknown_attr.Validate(rels).ok());

  // FK whose target columns are not the declared key of r2.
  SchemaConstraints non_key_target;
  ASSERT_TRUE(non_key_target.DeclareKey({"r2", {"Y"}}).ok());
  ASSERT_TRUE(
      non_key_target.DeclareForeignKey({"r1", {"X"}, "r2", {"X"}}).ok());
  EXPECT_FALSE(non_key_target.Validate(rels).ok());

  // FK into a relation with no declared key at all.
  SchemaConstraints no_target_key;
  ASSERT_TRUE(
      no_target_key.DeclareForeignKey({"r1", {"X"}, "r2", {"Y"}}).ok());
  EXPECT_FALSE(no_target_key.Validate(rels).ok());

  // The valid version of the same FK.
  SchemaConstraints good;
  ASSERT_TRUE(good.DeclareKey({"r2", {"Y"}}).ok());
  ASSERT_TRUE(good.DeclareForeignKey({"r1", {"X"}, "r2", {"Y"}}).ok());
  EXPECT_TRUE(good.Validate(rels).ok());
  EXPECT_EQ(good.ForeignKeysFrom("r1").size(), 1u);
  EXPECT_EQ(good.ForeignKeysInto("r2").size(), 1u);
  EXPECT_TRUE(good.ForeignKeysInto("r1").empty());
}

TEST(SchemaConstraintsTest, ViewCreateValidatesDeclaredConstraints) {
  std::vector<BaseRelationDef> rels = TwoRelations();
  SchemaConstraints bad;
  ASSERT_TRUE(bad.DeclareKey({"r1", {"Q"}}).ok());
  Result<ViewDefinitionPtr> view = ViewDefinition::NaturalJoin(
      "V", rels, {"W", "Y"}, Predicate(), std::move(bad));
  EXPECT_FALSE(view.ok());
}

TEST(SchemaConstraintsTest, KeysProjectedRequiresEveryDeclaredKey) {
  std::vector<BaseRelationDef> rels = TwoRelations();
  Result<ViewDefinitionPtr> both =
      ViewDefinition::NaturalJoin("V", rels, {"W", "Y"});
  ASSERT_TRUE(both.ok());
  EXPECT_TRUE((*both)->KeysProjected());

  Result<ViewDefinitionPtr> missing =
      ViewDefinition::NaturalJoin("V", rels, {"W", "X"});
  ASSERT_TRUE(missing.ok());
  EXPECT_FALSE((*missing)->KeysProjected());
}

TEST(SchemaConstraintsTest, EcaKeyRunsOnDeclaredConstraintsOnly) {
  // Same schemas but WITHOUT is_key flags; the keys are declared
  // explicitly instead. ECA-Key must accept the view.
  Schema r1({{"W", ValueType::kInt}, {"X", ValueType::kInt}});
  Schema r2({{"X", ValueType::kInt}, {"Y", ValueType::kInt}});
  std::vector<BaseRelationDef> rels = {{"r1", std::move(r1)},
                                       {"r2", std::move(r2)}};
  SchemaConstraints declared;
  ASSERT_TRUE(declared.DeclareKey({"r1", {"W"}}).ok());
  ASSERT_TRUE(declared.DeclareKey({"r2", {"Y"}}).ok());
  Result<ViewDefinitionPtr> view = ViewDefinition::NaturalJoin(
      "V", rels, {"W", "Y"}, Predicate(), std::move(declared));
  ASSERT_TRUE(view.ok());
  EXPECT_TRUE((*view)->KeysProjected());

  Catalog initial;
  Relation d1(rels[0].schema), d2(rels[1].schema);
  d1.Insert(Tuple::Ints({1, 5}));
  d2.Insert(Tuple::Ints({5, 9}));
  ASSERT_TRUE(initial.DefineWithData(rels[0], std::move(d1)).ok());
  ASSERT_TRUE(initial.DefineWithData(rels[1], std::move(d2)).ok());

  EcaKey maintainer(*view);
  EXPECT_TRUE(maintainer.Initialize(initial).ok());
}

TEST(SchemaConstraintsTest, FkStarWorkloadDeclaresTheChain) {
  Random rng(3);
  Result<Workload> w = MakeFkStarWorkload(FkStarConfig{}, &rng);
  ASSERT_TRUE(w.ok());
  const SchemaConstraints& c = w->view->constraints();
  EXPECT_NE(c.KeyOf("orders"), nullptr);
  EXPECT_NE(c.KeyOf("parts"), nullptr);
  EXPECT_NE(c.KeyOf("suppliers"), nullptr);
  ASSERT_EQ(c.foreign_keys().size(), 2u);
  EXPECT_TRUE(w->view->KeysProjected());
  EXPECT_NE(c.ToString().find("fk(orders.P -> parts.P)"), std::string::npos)
      << c.ToString();
}

}  // namespace
}  // namespace wvm
