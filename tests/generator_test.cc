// Tests that generated workloads actually exhibit the Table 1 parameters:
// cardinality C, join factor J, selectivity ~sigma, and valid update
// streams.
#include "workload/generator.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "query/evaluator.h"

namespace wvm {
namespace {

// Count occurrences of each value of `attr` in relation `name`.
std::map<int64_t, int64_t> ValueHistogram(const Workload& w,
                                          const std::string& name,
                                          const std::string& attr) {
  const Relation* r = w.initial.Get(name).value();
  size_t col = *r->schema().IndexOf(attr);
  std::map<int64_t, int64_t> hist;
  for (const auto& [t, c] : r->entries()) {
    hist[t.value(col).AsInt()] += c;
  }
  return hist;
}

TEST(GeneratorTest, Example6Cardinality) {
  Random rng(1);
  Result<Workload> w = MakeExample6Workload({100, 4}, &rng);
  ASSERT_TRUE(w.ok());
  for (const char* name : {"r1", "r2", "r3"}) {
    EXPECT_EQ(w->initial.Get(name).value()->TotalPositive(), 100) << name;
  }
}

TEST(GeneratorTest, Example6JoinFactors) {
  Random rng(2);
  Result<Workload> w = MakeExample6Workload({100, 4}, &rng);
  ASSERT_TRUE(w.ok());
  // Every join-attribute value occurs exactly J = 4 times.
  for (const auto& [rel, attr] :
       std::vector<std::pair<std::string, std::string>>{
           {"r1", "X"}, {"r2", "X"}, {"r2", "Y"}, {"r3", "Y"}}) {
    for (const auto& [value, count] : ValueHistogram(*w, rel, attr)) {
      EXPECT_EQ(count, 4) << rel << "." << attr << "=" << value;
    }
  }
}

TEST(GeneratorTest, Example6JoinAttributesDecorrelated) {
  // The J r2-tuples sharing an X value must carry J distinct Y values;
  // the Scenario 1 I/O analysis (1 probe per r2 match) depends on it.
  Random rng(3);
  Result<Workload> w = MakeExample6Workload({100, 4}, &rng);
  ASSERT_TRUE(w.ok());
  const Relation* r2 = w->initial.Get("r2").value();
  std::map<int64_t, std::set<int64_t>> ys_per_x;
  for (const auto& [t, c] : r2->entries()) {
    (void)c;
    ys_per_x[t.value(0).AsInt()].insert(t.value(1).AsInt());
  }
  for (const auto& [x, ys] : ys_per_x) {
    EXPECT_EQ(ys.size(), 4u) << "X=" << x;
  }
}

TEST(GeneratorTest, Example6SelectivityNearHalf) {
  Random rng(4);
  Result<Workload> w = MakeExample6Workload({200, 4}, &rng);
  ASSERT_TRUE(w.ok());
  // Evaluate the joined relation with and without the W>Z condition.
  Result<ViewDefinitionPtr> unfiltered = ViewDefinition::NaturalJoin(
      "Vall", w->defs, {"W", "Z"});
  ASSERT_TRUE(unfiltered.ok());
  Result<Relation> all = EvaluateView(*unfiltered, w->initial);
  Result<Relation> filtered = EvaluateView(w->view, w->initial);
  ASSERT_TRUE(all.ok());
  ASSERT_TRUE(filtered.ok());
  const double sigma = static_cast<double>(filtered->TotalPositive()) /
                       static_cast<double>(all->TotalPositive());
  EXPECT_GT(sigma, 0.35);
  EXPECT_LT(sigma, 0.65);
}

TEST(GeneratorTest, Example6ViewShape) {
  Random rng(5);
  Result<Workload> w = MakeExample6Workload({100, 4}, &rng);
  ASSERT_TRUE(w.ok());
  // |V| ~ sigma * C * J^2 = 800 at sigma=1/2.
  Result<Relation> v = EvaluateView(w->view, w->initial);
  ASSERT_TRUE(v.ok());
  EXPECT_GT(v->TotalPositive(), 500);
  EXPECT_LT(v->TotalPositive(), 1100);
}

TEST(GeneratorTest, RoundRobinInsertsCycleRelations) {
  Random rng(6);
  Result<Workload> w = MakeExample6Workload({100, 4}, &rng);
  ASSERT_TRUE(w.ok());
  Result<std::vector<Update>> updates = MakeRoundRobinInserts(*w, 9, &rng);
  ASSERT_TRUE(updates.ok());
  ASSERT_EQ(updates->size(), 9u);
  for (size_t i = 0; i < updates->size(); ++i) {
    EXPECT_EQ((*updates)[i].kind, UpdateKind::kInsert);
    EXPECT_EQ((*updates)[i].relation,
              w->defs[i % 3].name);
  }
}

TEST(GeneratorTest, RoundRobinInsertsJoinTheExistingData) {
  // New tuples must draw join attributes from the live domain so answers
  // have the expected ~sigma*J^2 size.
  Random rng(7);
  Result<Workload> w = MakeExample6Workload({100, 4}, &rng);
  ASSERT_TRUE(w.ok());
  Result<std::vector<Update>> updates = MakeRoundRobinInserts(*w, 30, &rng);
  ASSERT_TRUE(updates.ok());
  int64_t matched = 0;
  for (const Update& u : *updates) {
    if (u.relation != "r1") {
      continue;
    }
    std::optional<Term> t = Term::FromView(w->view).Substitute(u);
    ASSERT_TRUE(t.has_value());
    Result<Relation> r = EvaluateTerm(*t, w->initial);
    ASSERT_TRUE(r.ok());
    matched += r->TotalAbsolute();
  }
  // 10 r1-inserts x sigma*J^2 = 8 expected tuples each.
  EXPECT_GT(matched, 30);
}

TEST(GeneratorTest, MixedUpdatesAreAlwaysValid) {
  Random rng(8);
  Result<Workload> w = MakeExample6Workload({30, 3}, &rng);
  ASSERT_TRUE(w.ok());
  Result<std::vector<Update>> updates = MakeMixedUpdates(*w, 50, 0.5, &rng);
  ASSERT_TRUE(updates.ok());
  Catalog state = w->initial.Clone();
  int64_t deletes = 0;
  for (const Update& u : *updates) {
    EXPECT_TRUE(state.Apply(u).ok()) << u.ToString();
    if (u.kind == UpdateKind::kDelete) {
      ++deletes;
    }
  }
  EXPECT_GT(deletes, 5);  // the delete fraction actually bites
}

TEST(GeneratorTest, KeyedWorkloadHasUniqueKeys) {
  Random rng(9);
  Result<Workload> w = MakeKeyedWorkload({50, 5}, &rng);
  ASSERT_TRUE(w.ok());
  EXPECT_TRUE(w->view->KeysProjected());
  for (const auto& [value, count] : ValueHistogram(*w, "r1", "W")) {
    EXPECT_EQ(count, 1) << "W=" << value;
  }
  for (const auto& [value, count] : ValueHistogram(*w, "r2", "Y")) {
    EXPECT_EQ(count, 1) << "Y=" << value;
  }
}

TEST(GeneratorTest, KeyedInsertsUseFreshKeys) {
  Random rng(10);
  Result<Workload> w = MakeKeyedWorkload({20, 2}, &rng);
  ASSERT_TRUE(w.ok());
  Result<std::vector<Update>> updates = MakeMixedUpdates(*w, 30, 0.2, &rng);
  ASSERT_TRUE(updates.ok());
  Catalog state = w->initial.Clone();
  for (const Update& u : *updates) {
    ASSERT_TRUE(state.Apply(u).ok()) << u.ToString();
  }
  // Keys stay unique after the whole stream.
  const Relation* r1 = state.Get("r1").value();
  std::set<int64_t> seen;
  for (const auto& [t, c] : r1->entries()) {
    EXPECT_EQ(c, 1);
    EXPECT_TRUE(seen.insert(t.value(0).AsInt()).second)
        << "duplicate key " << t.ToString();
  }
}

TEST(GeneratorTest, RejectsDegenerateParameters) {
  Random rng(11);
  EXPECT_FALSE(MakeExample6Workload({0, 4}, &rng).ok());
  EXPECT_FALSE(MakeExample6Workload({10, 0}, &rng).ok());
  EXPECT_FALSE(MakeKeyedWorkload({0, 1}, &rng).ok());
}

TEST(GeneratorTest, Scenario1IndexInventoryMatchesPaper) {
  Random rng(12);
  Result<Workload> w = MakeExample6Workload({100, 4}, &rng);
  ASSERT_TRUE(w.ok());
  ASSERT_EQ(w->scenario1_indexes.size(), 4u);
  EXPECT_EQ(w->scenario1_indexes[0].relation, "r1");
  EXPECT_TRUE(w->scenario1_indexes[0].clustered);
  EXPECT_EQ(w->scenario1_indexes[3].relation, "r2");
  EXPECT_EQ(w->scenario1_indexes[3].attribute, "Y");
  EXPECT_FALSE(w->scenario1_indexes[3].clustered);
}

}  // namespace
}  // namespace wvm
