// Mechanics of the multi-source simulator itself: per-source FIFO
// ordering, enabled-action bookkeeping, fragment metering, heterogeneous
// warehouse composition (one MultiViewWarehouse child per algorithm).
#include <gtest/gtest.h>

#include "core/eca.h"
#include "core/eca_key.h"
#include "core/multi_view.h"
#include "multisource/ms_eca.h"
#include "multisource/ms_eca_snapshot.h"
#include "multisource/ms_simulation.h"
#include "test_util.h"

namespace wvm {
namespace {

struct TwoSource {
  std::vector<Catalog> per_source;
  ViewDefinitionPtr view;

  static TwoSource Make() {
    TwoSource f;
    Schema s1 = Schema::Ints({"W", "X"});
    Schema s2 = Schema::Ints({"X", "Y"});
    Catalog a, b;
    EXPECT_TRUE(a.DefineWithData({"r1", s1},
                                 Relation::FromTuples(
                                     s1, {Tuple::Ints({1, 2})}))
                    .ok());
    EXPECT_TRUE(b.DefineWithData({"r2", s2},
                                 Relation::FromTuples(
                                     s2, {Tuple::Ints({2, 5})}))
                    .ok());
    f.per_source = {std::move(a), std::move(b)};
    f.view = *ViewDefinition::NaturalJoin("V", {{"r1", s1}, {"r2", s2}},
                                          {"W", "Y"});
    return f;
  }
};

TEST(MsMechanicsTest, EnabledActionsTrackChannels) {
  TwoSource f = TwoSource::Make();
  Result<std::unique_ptr<MsSimulation>> sim = MsSimulation::Create(
      f.per_source, f.view, std::make_unique<MsEca>(f.view));
  ASSERT_TRUE(sim.ok());
  EXPECT_TRUE((*sim)->Quiescent());
  ASSERT_TRUE((*sim)
                  ->SetUpdateScript(0,
                                    {Update::Insert("r1", Tuple::Ints({4, 2}))})
                  .ok());
  ASSERT_EQ((*sim)->EnabledActions().size(), 1u);
  EXPECT_EQ((*sim)->EnabledActions()[0].kind,
            MsAction::Kind::kSourceUpdate);

  ASSERT_TRUE((*sim)->StepSourceUpdate(0).ok());
  // Now the warehouse has a notification from source 0.
  EXPECT_TRUE((*sim)->CanWarehouseStep(0));
  EXPECT_FALSE((*sim)->CanWarehouseStep(1));
  ASSERT_TRUE((*sim)->StepWarehouse(0).ok());
  // MsEca asked source 1 for the r2 fragment.
  EXPECT_TRUE((*sim)->CanSourceAnswer(1));
  EXPECT_FALSE((*sim)->CanSourceAnswer(0));
  ASSERT_TRUE((*sim)->StepSourceAnswer(1).ok());
  ASSERT_TRUE((*sim)->StepWarehouse(1).ok());
  EXPECT_TRUE((*sim)->Quiescent());
  EXPECT_EQ((*sim)->fragment_requests(), 1);
  EXPECT_EQ((*sim)->fragment_tuples(), 1);  // r2 has one tuple
}

TEST(MsMechanicsTest, BestCasePriorityIsWarehouseThenAnswerThenUpdate) {
  // RunBestCase's ordering is a semantic contract (drain warehouse work,
  // then answers, then admit the next update), not an artifact of the
  // MsAction::Kind declaration order — pin it explicitly so reordering the
  // enum can never silently invert the paper's best-case regime.
  EXPECT_GT(MsActionPriority(MsAction::Kind::kWarehouseStep),
            MsActionPriority(MsAction::Kind::kSourceAnswer));
  EXPECT_GT(MsActionPriority(MsAction::Kind::kSourceAnswer),
            MsActionPriority(MsAction::Kind::kSourceUpdate));
}

TEST(MsMechanicsTest, PerSourceFifoHoldsNotificationBeforeFragment) {
  // A source that executed an update BEFORE answering a fragment must
  // deliver the notification first on its channel.
  TwoSource f = TwoSource::Make();
  Result<std::unique_ptr<MsSimulation>> sim = MsSimulation::Create(
      f.per_source, f.view, std::make_unique<MsEca>(f.view));
  ASSERT_TRUE(sim.ok());
  ASSERT_TRUE((*sim)
                  ->SetUpdateScript(0,
                                    {Update::Insert("r1", Tuple::Ints({4, 2})),
                                     Update::Insert("r1", Tuple::Ints({6, 2}))})
                  .ok());
  ASSERT_TRUE((*sim)
                  ->SetUpdateScript(1,
                                    {Update::Insert("r2", Tuple::Ints({2, 9}))})
                  .ok());
  // U_A1 -> warehouse processes -> fragment request to B;
  // B executes U_B1 BEFORE answering -> warehouse must see U_B1 first.
  ASSERT_TRUE((*sim)->StepSourceUpdate(0).ok());
  ASSERT_TRUE((*sim)->StepWarehouse(0).ok());
  ASSERT_TRUE((*sim)->StepSourceUpdate(1).ok());
  ASSERT_TRUE((*sim)->StepSourceAnswer(1).ok());
  // Drain everything; correctness of the final view is the acid test that
  // compensation saw U_B1 in time.
  ASSERT_TRUE((*sim)->RunBestCase().ok());
  EXPECT_EQ((*sim)->warehouse_view(), *(*sim)->GlobalViewNow());
}

TEST(MsSnapshotMechanicsTest, RewindUndoesExactlyTheOvertakenUpdates) {
  // Deterministic replay of the mechanism: Q for U_A1 = insert(r1,[9,2])
  // awaits r2@B; B executes two updates BEFORE answering, so the fragment
  // shows both and the rewind list holds both; the folded delta must be
  // V<U_A1> at U_A1's own state — i.e., joining the ORIGINAL r2 only.
  Schema s1 = Schema::Ints({"W", "X"});
  Schema s2 = Schema::Ints({"X", "Y"});
  Catalog a, b;
  ASSERT_TRUE(a.DefineWithData({"r1", s1},
                               Relation::FromTuples(s1, {Tuple::Ints({1, 2})}))
                  .ok());
  ASSERT_TRUE(b.DefineWithData({"r2", s2},
                               Relation::FromTuples(s2, {Tuple::Ints({2, 5})}))
                  .ok());
  ViewDefinitionPtr view = *ViewDefinition::NaturalJoin(
      "V", {{"r1", s1}, {"r2", s2}}, {"W", "Y"});
  Result<std::unique_ptr<MsSimulation>> sim = MsSimulation::Create(
      {a, b}, view, std::make_unique<MsEcaSnapshot>(view));
  ASSERT_TRUE(sim.ok());
  ASSERT_TRUE((*sim)
                  ->SetUpdateScript(0,
                                    {Update::Insert("r1", Tuple::Ints({9, 2}))})
                  .ok());
  ASSERT_TRUE((*sim)
                  ->SetUpdateScript(1,
                                    {Update::Insert("r2", Tuple::Ints({2, 6})),
                                     Update::Delete("r2", Tuple::Ints({2, 5}))})
                  .ok());
  // U_A1; warehouse -> fragment request to B; B executes BOTH updates,
  // THEN answers; warehouse consumes B's channel in order: U_B1, U_B2,
  // fragment.
  ASSERT_TRUE((*sim)->StepSourceUpdate(0).ok());
  ASSERT_TRUE((*sim)->StepWarehouse(0).ok());
  ASSERT_TRUE((*sim)->StepSourceUpdate(1).ok());
  ASSERT_TRUE((*sim)->StepSourceUpdate(1).ok());
  ASSERT_TRUE((*sim)->StepSourceAnswer(1).ok());
  ASSERT_TRUE((*sim)->StepWarehouse(1).ok());  // U_B1 -> rewind + own query
  ASSERT_TRUE((*sim)->StepWarehouse(1).ok());  // U_B2 -> rewind + own query
  ASSERT_TRUE((*sim)->StepWarehouse(1).ok());  // fragment for Q_A1 -> fold
  // Drain the remaining round trips.
  ASSERT_TRUE((*sim)->RunBestCase().ok());
  EXPECT_EQ((*sim)->warehouse_view(), *(*sim)->GlobalViewNow());
  // Final view: [9,6] (r2 now holds [2,6]); [1,6] as well; [x,5] gone.
  EXPECT_EQ((*sim)->warehouse_view().CountOf(Tuple::Ints({9, 6})), 1);
  EXPECT_EQ((*sim)->warehouse_view().CountOf(Tuple::Ints({9, 5})), 0);
  ConsistencyReport report = CheckConsistency((*sim)->state_log());
  EXPECT_TRUE(report.strongly_consistent) << report.ToString();
}

TEST(MsMechanicsTest, OutOfRangeSourcesRejected) {
  TwoSource f = TwoSource::Make();
  Result<std::unique_ptr<MsSimulation>> sim = MsSimulation::Create(
      f.per_source, f.view, std::make_unique<MsEca>(f.view));
  ASSERT_TRUE(sim.ok());
  EXPECT_EQ((*sim)->SetUpdateScript(5, {}).code(), StatusCode::kOutOfRange);
  EXPECT_FALSE((*sim)->StepSourceUpdate(0).ok());  // empty script
}

TEST(MultiViewHeterogeneousTest, EcaAndEcaKeyChildrenCoexist) {
  // One warehouse, two views over the same source: an unkeyed join view
  // under ECA and a keyed view under ECA-Key, fed by one notification
  // stream.
  Schema s1({{"W", ValueType::kInt, true}, {"X", ValueType::kInt, false}});
  Schema s2({{"X", ValueType::kInt, false}, {"Y", ValueType::kInt, true}});
  Catalog initial;
  ASSERT_TRUE(initial
                  .DefineWithData({"r1", s1},
                                  Relation::FromTuples(
                                      s1, {Tuple::Ints({1, 2})}))
                  .ok());
  ASSERT_TRUE(initial
                  .DefineWithData({"r2", s2},
                                  Relation::FromTuples(
                                      s2, {Tuple::Ints({2, 3})}))
                  .ok());
  ViewDefinitionPtr unkeyed = *ViewDefinition::NaturalJoin(
      "V1", {{"r1", s1}, {"r2", s2}}, {"X"});
  ViewDefinitionPtr keyed = *ViewDefinition::NaturalJoin(
      "V2", {{"r1", s1}, {"r2", s2}}, {"W", "Y"});

  std::vector<std::unique_ptr<ViewMaintainer>> children;
  children.push_back(std::make_unique<Eca>(unkeyed));
  children.push_back(std::make_unique<EcaKey>(keyed));
  auto multi = std::make_unique<MultiViewWarehouse>(std::move(children));
  MultiViewWarehouse* raw = multi.get();
  Result<std::unique_ptr<Simulation>> sim = Simulation::Create(
      initial, unkeyed, std::move(multi), SimulationOptions());
  ASSERT_TRUE(sim.ok()) << sim.status();
  (*sim)->SetUpdateScript({Update::Insert("r2", Tuple::Ints({2, 9})),
                           Update::Delete("r1", Tuple::Ints({1, 2})),
                           Update::Insert("r1", Tuple::Ints({5, 2}))});
  RandomPolicy policy(21);
  ASSERT_TRUE(RunToQuiescence(sim->get(), &policy).ok());

  Result<Relation> v1 = EvaluateView(unkeyed, (*sim)->source_catalog());
  Result<Relation> v2 = EvaluateView(keyed, (*sim)->source_catalog());
  EXPECT_EQ(raw->child(0).view_contents(), *v1);
  EXPECT_EQ(raw->child(1).view_contents(), *v2);
}

}  // namespace
}  // namespace wvm
