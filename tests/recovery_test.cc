// The crash-restart recovery subsystem (src/recovery), unit level:
//
//   1. the write-ahead Journal — explicit caller-supplied LSNs (the reliable
//      protocol's sequence numbers), strict monotonicity, per-record
//      checksums that reject corrupted records, truncation after
//      checkpoints, and repeatable (hence idempotent) replay scans;
//   2. maintainer state snapshots — each ECA-family algorithm deep-copies
//      and restores its full bookkeeping (UQS, COLLECT, buffers), and a
//      snapshot from one algorithm is rejected by another;
//   3. the ReliableEndpoint crash/restart surface — a crashed receiver
//      discards arriving frames without acking them, and journal-recovered
//      restarts re-sync both halves (retransmission repairs in-flight loss,
//      dedup absorbs replayed duplicates).
//
// System-level crash schedules live in crash_matrix_test.cc.
#include <gtest/gtest.h>

#include <deque>
#include <map>
#include <string>
#include <vector>

#include "core/eca.h"
#include "core/eca_key.h"
#include "recovery/journal.h"
#include "recovery/site_log.h"
#include "test_util.h"
#include "transport/reliable_endpoint.h"
#include "workload/generator.h"

namespace wvm {
namespace {

Journal<std::string> MakeStringJournal() {
  return Journal<std::string>([](const std::string& s) { return s; });
}

// ---------------------------------------------------------------------------
// Journal: LSN discipline.

TEST(JournalTest, AppendsWithExplicitLsnsAndGaps) {
  Journal<std::string> j = MakeStringJournal();
  EXPECT_TRUE(j.empty());
  EXPECT_EQ(j.begin_lsn(), 0u);
  EXPECT_EQ(j.end_lsn(), 0u);
  ASSERT_TRUE(j.Append(3, "a").ok());  // LSNs need not start at 0
  ASSERT_TRUE(j.Append(4, "b").ok());
  ASSERT_TRUE(j.Append(9, "c").ok());  // gaps are fine (per-direction seqs)
  EXPECT_EQ(j.size(), 3u);
  EXPECT_EQ(j.begin_lsn(), 3u);
  EXPECT_EQ(j.end_lsn(), 10u);
  Result<const std::string*> r = j.Read(4);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(**r, "b");
  EXPECT_TRUE(j.Read(5).status().code() == StatusCode::kNotFound);
}

TEST(JournalTest, RejectsNonMonotonicAppends) {
  Journal<std::string> j = MakeStringJournal();
  ASSERT_TRUE(j.Append(5, "a").ok());
  EXPECT_TRUE(j.Append(5, "dup").code() == StatusCode::kInvalidArgument);
  EXPECT_TRUE(j.Append(4, "old").code() == StatusCode::kInvalidArgument);
  ASSERT_TRUE(j.Append(6, "b").ok());
}

TEST(JournalTest, RejectsAppendBelowTruncatedHighWaterMark) {
  Journal<std::string> j = MakeStringJournal();
  ASSERT_TRUE(j.Append(1, "a").ok());
  ASSERT_TRUE(j.Append(2, "b").ok());
  j.TruncateBelow(3);
  EXPECT_TRUE(j.empty());
  EXPECT_EQ(j.end_lsn(), 3u) << "end_lsn must survive truncation";
  EXPECT_TRUE(j.Append(2, "zombie").code() == StatusCode::kInvalidArgument);
  ASSERT_TRUE(j.Append(3, "c").ok());
}

// ---------------------------------------------------------------------------
// Journal: checksums.

TEST(JournalTest, ChecksumCoversLsnAndPayload) {
  EXPECT_NE(JournalChecksum(1, "x"), JournalChecksum(2, "x"));
  EXPECT_NE(JournalChecksum(1, "x"), JournalChecksum(1, "y"));
  EXPECT_EQ(JournalChecksum(7, "abc"), JournalChecksum(7, "abc"));
}

TEST(JournalTest, CorruptedRecordFailsReadAndScan) {
  Journal<std::string> j = MakeStringJournal();
  ASSERT_TRUE(j.Append(0, "a").ok());
  ASSERT_TRUE(j.Append(1, "b").ok());
  ASSERT_TRUE(j.Append(2, "c").ok());
  j.CorruptRecordForTest(1);
  EXPECT_TRUE(j.Read(0).ok());
  EXPECT_TRUE(j.Read(1).status().code() == StatusCode::kInternal);
  // A scan that crosses the damaged record refuses to replay past it.
  std::vector<std::string> replayed;
  Status scan = j.Scan(0, 3, [&](uint64_t, const std::string& s) {
    replayed.push_back(s);
    return Status::OK();
  });
  EXPECT_EQ(scan.code(), StatusCode::kInternal);
  EXPECT_EQ(replayed, std::vector<std::string>{"a"});
  // A scan of the undamaged prefix still works.
  replayed.clear();
  EXPECT_TRUE(j.Scan(0, 1, [&](uint64_t, const std::string& s) {
                 replayed.push_back(s);
                 return Status::OK();
               }).ok());
  EXPECT_EQ(replayed, std::vector<std::string>{"a"});
}

// ---------------------------------------------------------------------------
// Journal: truncation and idempotent replay.

TEST(JournalTest, TruncateBelowKeepsSuffix) {
  Journal<std::string> j = MakeStringJournal();
  for (uint64_t i = 0; i < 6; ++i) {
    ASSERT_TRUE(j.Append(i, std::string(1, 'a' + static_cast<char>(i))).ok());
  }
  j.TruncateBelow(4);
  EXPECT_EQ(j.size(), 2u);
  EXPECT_EQ(j.begin_lsn(), 4u);
  EXPECT_EQ(j.end_lsn(), 6u);
  EXPECT_TRUE(j.Read(3).status().code() == StatusCode::kNotFound);
  EXPECT_TRUE(j.Read(4).ok());
  j.TruncateBelow(0);  // no-op
  EXPECT_EQ(j.size(), 2u);
}

TEST(JournalTest, ScanIsRepeatableHenceReplayIsIdempotent) {
  Journal<std::string> j = MakeStringJournal();
  ASSERT_TRUE(j.Append(10, "u1").ok());
  ASSERT_TRUE(j.Append(11, "u2").ok());
  ASSERT_TRUE(j.Append(12, "u3").ok());
  auto collect = [&j](uint64_t from, uint64_t to) {
    std::vector<std::string> out;
    EXPECT_TRUE(j.Scan(from, to, [&](uint64_t, const std::string& s) {
                   out.push_back(s);
                   return Status::OK();
                 }).ok());
    return out;
  };
  std::vector<std::string> first = collect(10, 13);
  std::vector<std::string> second = collect(10, 13);
  EXPECT_EQ(first, second) << "scanning must not consume the journal";
  EXPECT_EQ(collect(11, 12), std::vector<std::string>{"u2"});
  EXPECT_TRUE(collect(13, 20).empty());
}

// Regression: TruncateBelow used to accept a floor past end_lsn(), silently
// erasing the whole retained log while leaving end_lsn() behind the
// caller's idea of the checkpoint floor. Nothing past the end can have
// been checkpointed, so that floor is a caller bug and must be rejected.
TEST(JournalTest, TruncateBelowRejectsFloorAboveEndLsn) {
  Journal<std::string> j = MakeStringJournal();
  ASSERT_TRUE(j.Append(0, "a").ok());
  ASSERT_TRUE(j.Append(1, "b").ok());
  EXPECT_EQ(j.TruncateBelow(3).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(j.size(), 2u) << "a rejected truncation must not erase records";
  EXPECT_TRUE(j.TruncateBelow(2).ok());  // exactly end_lsn() is legal
  EXPECT_TRUE(j.empty());
  // And on an empty journal the same guard holds against any floor > 0.
  Journal<std::string> empty = MakeStringJournal();
  EXPECT_EQ(empty.TruncateBelow(1).code(), StatusCode::kInvalidArgument);
}

// Regression: Read/Scan used to re-serialize the payload to recompute the
// checksum, so a serializer that is not bit-stable across calls made every
// read fail (or worse, mask real corruption). The checksum must cover the
// image captured at append time, full stop.
TEST(JournalTest, ChecksumCoversTheAppendTimeImageNotAReserialization) {
  // A deliberately nondeterministic serializer: every call returns a
  // different rendering of the same payload.
  int calls = 0;
  Journal<std::string> j([&calls](const std::string& s) {
    return s + "#" + std::to_string(calls++);
  });
  ASSERT_TRUE(j.Append(0, "stable-payload").ok());
  ASSERT_TRUE(j.Append(1, "another").ok());
  // Reads and scans validate against the stored image: all pass, and the
  // serializer is never consulted again.
  const int calls_after_append = calls;
  Result<const std::string*> r = j.Read(0);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(**r, "stable-payload");
  ASSERT_TRUE(j.Read(1).ok());
  int scanned = 0;
  EXPECT_TRUE(j.Scan(0, 2, [&](uint64_t, const std::string&) {
                 ++scanned;
                 return Status::OK();
               }).ok());
  EXPECT_EQ(scanned, 2);
  EXPECT_EQ(calls, calls_after_append)
      << "validation re-serialized the payload";
}

// ---------------------------------------------------------------------------
// Maintainer snapshots: deep copy and restore of the ECA family's state.

TEST(MaintainerSnapshotTest, EcaSnapshotRestoresUqsAndCollect) {
  Random rng(7);
  Result<Workload> w = MakeExample6Workload({10, 2}, &rng);
  ASSERT_TRUE(w.ok()) << w.status();
  Result<std::vector<Update>> updates = MakeMixedUpdates(*w, 4, 0.3, &rng);
  ASSERT_TRUE(updates.ok()) << updates.status();
  std::unique_ptr<Simulation> sim =
      MustMakeSim(w->initial, w->view, Algorithm::kEca);
  sim->SetUpdateScript(*updates);
  // Push all updates through the source but answer nothing: UQS fills up.
  while (sim->CanSourceUpdate()) {
    ASSERT_TRUE(sim->StepSourceUpdate().ok());
  }
  while (sim->CanWarehouseStep()) {
    ASSERT_TRUE(sim->StepWarehouse().ok());
  }
  auto* eca = dynamic_cast<Eca*>(&sim->mutable_maintainer());
  ASSERT_NE(eca, nullptr);
  ASSERT_FALSE(eca->uqs().empty()) << "test needs in-flight queries";
  std::map<uint64_t, Query> uqs_before = eca->uqs();
  Relation mv_before = eca->view_contents();
  Relation collect_before = eca->collect();

  std::shared_ptr<const MaintainerSnapshot> snap = eca->SnapshotState();
  eca->LoseVolatileState();
  EXPECT_TRUE(eca->uqs().empty());
  EXPECT_TRUE(eca->IsQuiescent()) << "crash without recovery forgets UQS";

  ASSERT_TRUE(eca->RestoreState(*snap).ok());
  EXPECT_EQ(eca->uqs().size(), uqs_before.size());
  for (const auto& [id, q] : uqs_before) {
    EXPECT_EQ(eca->uqs().count(id), 1u);
  }
  EXPECT_TRUE(eca->view_contents() == mv_before);
  EXPECT_TRUE(eca->collect() == collect_before);
  EXPECT_FALSE(eca->IsQuiescent());
}

TEST(MaintainerSnapshotTest, MismatchedSnapshotTypeIsRejected) {
  Random rng(9);
  Result<Workload> w = MakeKeyedWorkload({8, 2}, &rng);
  ASSERT_TRUE(w.ok()) << w.status();
  std::unique_ptr<Simulation> eca_sim =
      MustMakeSim(w->initial, w->view, Algorithm::kEca);
  std::unique_ptr<Simulation> key_sim =
      MustMakeSim(w->initial, w->view, Algorithm::kEcaKey);
  std::shared_ptr<const MaintainerSnapshot> eca_snap =
      eca_sim->maintainer().SnapshotState();
  Status restore = key_sim->mutable_maintainer().RestoreState(*eca_snap);
  EXPECT_EQ(restore.code(), StatusCode::kInvalidArgument) << restore;
}

// ---------------------------------------------------------------------------
// ReliableEndpoint crash/restart: the re-sync building blocks recovery
// composes. (Full site recovery is exercised in crash_matrix_test.cc.)

FaultConfig CleanReliable(int delay = 0) {
  FaultConfig f;
  f.enabled = true;
  f.reliable = true;
  f.max_delay_ticks = delay;
  f.retransmit_timeout_ticks = 4;
  return f;
}

// Drains everything currently deliverable, ticking while timed work
// remains, and appends received payloads to `got`.
template <typename T>
void DrainEndpoint(ReliableEndpoint<T>* ep, std::vector<T>* got,
                   int max_ticks = 1000) {
  for (int i = 0; i < max_ticks; ++i) {
    while (ep->HasMessage()) {
      got->push_back(ep->Receive());
    }
    if (!ep->HasTimedWork()) {
      return;
    }
    ep->Tick();
  }
  FAIL() << "endpoint failed to quiesce";
}

TEST(EndpointCrashTest, CrashedReceiverDiscardsWithoutAcking) {
  ReliableEndpoint<int> ep(CleanReliable(), 1, {});
  ep.CrashReceiver();
  ep.Send(0);
  ep.Send(1);
  EXPECT_FALSE(ep.HasMessage());
  EXPECT_EQ(ep.stats().frames_lost_to_crash, 2);
  EXPECT_EQ(ep.stats().acks_sent, 0) << "a dead site must not ack";
  EXPECT_EQ(ep.next_expected(), 0u);
  // The sender's retransmission repairs everything after the restart.
  ep.RestartReceiver();
  std::vector<int> got;
  DrainEndpoint(&ep, &got);
  EXPECT_EQ(got, (std::vector<int>{0, 1}));
}

TEST(EndpointCrashTest, JournalRecoveredReceiverRestartResyncs) {
  ReliableEndpoint<int> ep(CleanReliable(), 2, {});
  ep.Send(10);
  ep.Send(11);
  ep.Send(12);
  std::vector<int> got;
  DrainEndpoint(&ep, &got);
  ASSERT_EQ(got, (std::vector<int>{10, 11, 12}));
  // Crash: frame 12 had been delivered but (say) not consumed. The inbound
  // journal replays it into the restart as the delivered tail, and the
  // watermark comes back as the journal's high-water mark.
  ep.CrashReceiver();
  ep.RestartReceiver(/*next_expected=*/3, std::deque<int>{12});
  ASSERT_TRUE(ep.HasMessage());
  EXPECT_EQ(ep.Receive(), 12);
  // The channel keeps working with the same numbering.
  ep.Send(13);
  got.clear();
  DrainEndpoint(&ep, &got);
  EXPECT_EQ(got, (std::vector<int>{13}));
}

TEST(EndpointCrashTest, RestoredSenderWindowIsRetransmittedAndDeduped) {
  ReliableEndpoint<int> ep(CleanReliable(), 3, {});
  ep.Send(20);
  ep.Send(21);
  std::vector<int> got;
  DrainEndpoint(&ep, &got);
  ASSERT_EQ(got, (std::vector<int>{20, 21}));
  ep.CrashSender();
  // The outbound journal retained both frames (no checkpoint ran), so the
  // restart conservatively re-installs and re-sends them; the receiver has
  // already released both and must discard the duplicates.
  ep.RestartSender(/*next_seq=*/2, std::map<uint64_t, int>{{0, 20}, {1, 21}});
  got.clear();
  DrainEndpoint(&ep, &got);
  EXPECT_TRUE(got.empty()) << "replayed duplicates must not re-deliver";
  EXPECT_GE(ep.stats().duplicates_discarded, 2);
  ep.Send(22);
  DrainEndpoint(&ep, &got);
  EXPECT_EQ(got, (std::vector<int>{22}));
}

TEST(EndpointCrashTest, BareSenderRestartLosesUnackedFrames) {
  // Delay keeps the data frame in flight long enough to crash the sender
  // before any delivery; drop ensures the copy on the wire then vanishes.
  FaultConfig f = CleanReliable(/*delay=*/3);
  f.drop_rate = 0.95;
  f.seed = 5;
  ReliableEndpoint<int> ep(f, 4, {});
  ep.Send(30);
  ep.CrashSender();
  ep.RestartSender();  // bare: the unacked window is gone
  // With the window empty there is nothing to retransmit: if the wire
  // dropped the only copy, the frame is lost forever (and the endpoint
  // correctly reports no pending work rather than hanging).
  std::vector<int> got;
  DrainEndpoint(&ep, &got);
  if (got.empty()) {
    EXPECT_EQ(ep.next_expected(), 0u);
  } else {
    EXPECT_EQ(got, (std::vector<int>{30}));  // wire happened to deliver it
  }
}

// ---------------------------------------------------------------------------
// Site logs: the serializer wiring compiles against the real message types
// and keys records by protocol seq.

TEST(SiteLogTest, WarehouseLogJournalsSourceMessagesBySeq) {
  WarehouseSiteLog log;
  Update u;
  u.id = 1;
  u.relation = "r";
  ASSERT_TRUE(log.inbound.Append(0, UpdateNotification{u}).ok());
  ASSERT_TRUE(log.inbound.Append(1, AnswerMessage{}).ok());
  EXPECT_EQ(log.inbound.end_lsn(), 2u);
  Result<const SourceMessage*> r = log.inbound.Read(0);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_NE(std::get_if<UpdateNotification>(*r), nullptr);
  EXPECT_FALSE(log.checkpoint.has_value());
}

}  // namespace
}  // namespace wvm
