// Tests for the plan log (EXPLAIN of the physical plans): the recorded
// steps must be the exact access paths Appendix D derives, and a
// COUNT(*)-group-by corollary of the duplicate-retention design.
#include <gtest/gtest.h>

#include "common/strings.h"
#include "query/evaluator.h"
#include "source/source.h"
#include "test_util.h"
#include "workload/generator.h"

namespace wvm {
namespace {

struct ExplainFixture {
  Workload workload;
  Source source;

  static ExplainFixture Make(PhysicalScenario scenario) {
    Random rng(42);
    Result<Workload> w = MakeExample6Workload({100, 4}, &rng);
    EXPECT_TRUE(w.ok());
    PhysicalConfig config;
    config.scenario = scenario;
    std::vector<IndexSpec> indexes =
        scenario == PhysicalScenario::kIndexedMemory
            ? w->scenario1_indexes
            : std::vector<IndexSpec>{};
    Result<Source> source = Source::Create(w->initial, config, indexes);
    EXPECT_TRUE(source.ok());
    return ExplainFixture{std::move(*w), std::move(*source)};
  }

  std::vector<std::string> Explain(const Term& t) {
    IOStats io;
    io.record_plans = true;
    Result<Relation> r = EvaluateTermPhysical(t, source.storage(),
                                              source.config(), &io);
    EXPECT_TRUE(r.ok()) << r.status();
    return io.plan_log;
  }
};

TEST(ExplainTest, Q1PlanMatchesAppendixD) {
  // pi(t1 |x| r2 |x| r3): clustered X probe into r2, then Y probes into r3.
  ExplainFixture f = ExplainFixture::Make(PhysicalScenario::kIndexedMemory);
  Term t = *Term::FromView(f.workload.view)
                .Substitute(Update::Insert("r1", Tuple::Ints({42, 3})));
  std::vector<std::string> plan = f.Explain(t);
  ASSERT_EQ(plan.size(), 2u);
  EXPECT_NE(plan[0].find("probe r2.X (clustered index)"), std::string::npos)
      << plan[0];
  EXPECT_NE(plan[1].find("probe r3.Y (clustered index)"), std::string::npos)
      << plan[1];
}

TEST(ExplainTest, Q3PlanUsesTheNonClusteredIndex) {
  // pi(r1 |x| r2 |x| t3): non-clustered Y probe into r2, then X into r1.
  ExplainFixture f = ExplainFixture::Make(PhysicalScenario::kIndexedMemory);
  Term t = *Term::FromView(f.workload.view)
                .Substitute(Update::Insert("r3", Tuple::Ints({7, 5})));
  std::vector<std::string> plan = f.Explain(t);
  ASSERT_EQ(plan.size(), 2u);
  EXPECT_NE(plan[0].find("probe r2.Y (non-clustered index)"),
            std::string::npos)
      << plan[0];
  EXPECT_NE(plan[1].find("probe r1.X (clustered index)"), std::string::npos)
      << plan[1];
}

TEST(ExplainTest, RecomputationReadsEverythingOnce) {
  ExplainFixture f = ExplainFixture::Make(PhysicalScenario::kIndexedMemory);
  std::vector<std::string> plan =
      f.Explain(Term::FromView(f.workload.view));
  ASSERT_EQ(plan.size(), 1u);
  EXPECT_NE(plan[0].find("recompute"), std::string::npos);
}

TEST(ExplainTest, Scenario2UsesBlockedNestedLoops) {
  ExplainFixture f =
      ExplainFixture::Make(PhysicalScenario::kNestedLoopLimited);
  Term t = *Term::FromView(f.workload.view)
                .Substitute(Update::Insert("r1", Tuple::Ints({42, 3})));
  std::vector<std::string> plan = f.Explain(t);
  ASSERT_EQ(plan.size(), 1u);
  EXPECT_NE(plan[0].find("blocked nested loop over 2 unbound relations"),
            std::string::npos)
      << plan[0];
}

TEST(ExplainTest, PlanLogOffByDefault) {
  ExplainFixture f = ExplainFixture::Make(PhysicalScenario::kIndexedMemory);
  IOStats io;
  Term t = Term::FromView(f.workload.view);
  ASSERT_TRUE(
      EvaluateTermPhysical(t, f.source.storage(), f.source.config(), &io)
          .ok());
  EXPECT_TRUE(io.plan_log.empty());
}

// --- COUNT(*) GROUP BY as a corollary of duplicate retention ----------------

TEST(CountViewTest, MultiplicityIsTheGroupCount) {
  // The paper retains duplicates because deletions need them (Section 1.1,
  // citing the counting approach of [GMS93]). A corollary: a view that
  // projects the grouping columns IS a COUNT(*) GROUP BY — the Z-relation
  // multiplicity is the count, and every maintenance algorithm keeps it
  // incrementally correct.
  Schema sales = Schema::Ints({"sale", "region"});
  Catalog initial;
  ASSERT_TRUE(initial
                  .DefineWithData({"sales", sales},
                                  Relation::FromTuples(
                                      sales, {Tuple::Ints({1, 7}),
                                              Tuple::Ints({2, 7}),
                                              Tuple::Ints({3, 8})}))
                  .ok());
  Result<ViewDefinitionPtr> view =
      ViewDefinition::Create("per_region", {{"sales", sales}}, {"region"},
                             Predicate());
  ASSERT_TRUE(view.ok());

  std::unique_ptr<Simulation> sim =
      MustMakeSim(initial, *view, Algorithm::kEca);
  EXPECT_EQ(sim->warehouse_view().CountOf(Tuple::Ints({7})), 2);
  EXPECT_EQ(sim->warehouse_view().CountOf(Tuple::Ints({8})), 1);

  sim->SetUpdateScript({Update::Insert("sales", Tuple::Ints({4, 8})),
                        Update::Delete("sales", Tuple::Ints({1, 7})),
                        Update::Insert("sales", Tuple::Ints({5, 8}))});
  RandomPolicy policy(3);
  ASSERT_TRUE(RunToQuiescence(sim.get(), &policy).ok());
  EXPECT_EQ(sim->warehouse_view().CountOf(Tuple::Ints({7})), 1);
  EXPECT_EQ(sim->warehouse_view().CountOf(Tuple::Ints({8})), 3);
  EXPECT_TRUE(CheckConsistency(sim->state_log()).strongly_consistent);
}

TEST(CountViewTest, JoinCountViewUnderConcurrency) {
  // COUNT(*) per region over a join: pi_{region}(accounts |x| customers).
  Schema accounts = Schema::Ints({"acct", "cust"});
  Schema customers = Schema::Ints({"cust", "region"});
  Catalog initial;
  ASSERT_TRUE(initial
                  .DefineWithData({"accounts", accounts},
                                  Relation::FromTuples(
                                      accounts, {Tuple::Ints({100, 1}),
                                                 Tuple::Ints({101, 1}),
                                                 Tuple::Ints({102, 2})}))
                  .ok());
  ASSERT_TRUE(initial
                  .DefineWithData({"customers", customers},
                                  Relation::FromTuples(
                                      customers, {Tuple::Ints({1, 7}),
                                                  Tuple::Ints({2, 8})}))
                  .ok());
  Result<ViewDefinitionPtr> view = ViewDefinition::NaturalJoin(
      "accts_per_region",
      {{"accounts", accounts}, {"customers", customers}}, {"region"});
  ASSERT_TRUE(view.ok());
  std::unique_ptr<Simulation> sim =
      MustMakeSim(initial, *view, Algorithm::kEca);
  sim->SetUpdateScript({Update::Insert("accounts", Tuple::Ints({103, 2})),
                        Update::Delete("customers", Tuple::Ints({1, 7})),
                        Update::Insert("customers", Tuple::Ints({1, 8}))});
  WorstCasePolicy policy;
  ASSERT_TRUE(RunToQuiescence(sim.get(), &policy).ok());
  // Region 7 lost its customer; region 8 now has cust 1 (2 accounts) and
  // cust 2 (2 accounts) = 4.
  EXPECT_EQ(sim->warehouse_view().CountOf(Tuple::Ints({7})), 0);
  EXPECT_EQ(sim->warehouse_view().CountOf(Tuple::Ints({8})), 4);
  EXPECT_TRUE(CheckConsistency(sim->state_log()).strongly_consistent);
}

}  // namespace
}  // namespace wvm
