// Tests for the event simulator: FIFO delivery, atomic events, enabled
// actions, policies, metering, state logging, tracing, and batching.
#include "sim/simulation.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace wvm {
namespace {

std::unique_ptr<Simulation> Example2Sim(Algorithm a,
                                        SimulationOptions options = {}) {
  Result<PaperExample> ex = MakePaperExample2();
  EXPECT_TRUE(ex.ok());
  std::unique_ptr<Simulation> sim =
      MustMakeSim(ex->initial, ex->view, a, options);
  sim->SetUpdateScript(ex->updates);
  return sim;
}

TEST(SimulationTest, InitialStatesRecorded) {
  std::unique_ptr<Simulation> sim = Example2Sim(Algorithm::kEca);
  ASSERT_EQ(sim->state_log().source_view_states.size(), 1u);
  ASSERT_EQ(sim->state_log().warehouse_view_states.size(), 1u);
  // V[ws_0] = V[ss_0].
  EXPECT_EQ(sim->state_log().source_view_states[0],
            sim->state_log().warehouse_view_states[0]);
}

TEST(SimulationTest, EnabledActionsEvolveCorrectly) {
  std::unique_ptr<Simulation> sim = Example2Sim(Algorithm::kEca);
  EXPECT_TRUE(sim->CanSourceUpdate());
  EXPECT_FALSE(sim->CanSourceAnswer());   // no queries yet
  EXPECT_FALSE(sim->CanWarehouseStep());  // no messages yet
  ASSERT_TRUE(sim->StepSourceUpdate().ok());
  EXPECT_TRUE(sim->CanWarehouseStep());  // notification waiting
  ASSERT_TRUE(sim->StepWarehouse().ok());
  EXPECT_TRUE(sim->CanSourceAnswer());  // query waiting
  ASSERT_TRUE(sim->StepSourceAnswer().ok());
  ASSERT_TRUE(sim->StepWarehouse().ok());
  EXPECT_TRUE(sim->CanSourceUpdate());
  EXPECT_FALSE(sim->Quiescent());
}

TEST(SimulationTest, SteppingDisabledActionsFails) {
  std::unique_ptr<Simulation> sim = Example2Sim(Algorithm::kEca);
  EXPECT_EQ(sim->StepSourceAnswer().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(sim->StepWarehouse().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(sim->Step(SimAction::kNone).code(),
            StatusCode::kFailedPrecondition);
}

TEST(SimulationTest, MessagesDeliveredInOrderAcrossKinds) {
  // The single source->warehouse stream interleaves notifications and
  // answers in send order: after [U1, Q1-answer, U2], the warehouse must
  // see U1, A1, U2 in exactly that order.
  std::unique_ptr<Simulation> sim = Example2Sim(Algorithm::kEca);
  ASSERT_TRUE(sim->StepSourceUpdate().ok());  // U1 notification queued
  ASSERT_TRUE(sim->StepWarehouse().ok());     // consume U1, Q1 queued
  ASSERT_TRUE(sim->StepSourceAnswer().ok());  // A1 queued
  ASSERT_TRUE(sim->StepSourceUpdate().ok());  // U2 notification queued
  // The warehouse now must receive A1 before U2; under ECA that means no
  // compensation is added to Q2.
  ASSERT_TRUE(sim->StepWarehouse().ok());  // A1 -> UQS empties
  ASSERT_TRUE(sim->StepWarehouse().ok());  // U2 -> Q2 has 1 term
  EXPECT_EQ(sim->meter().query_terms(), 2);  // 1 (Q1) + 1 (Q2)
}

TEST(SimulationTest, RunToQuiescenceDrainsEverything) {
  std::unique_ptr<Simulation> sim = Example2Sim(Algorithm::kEca);
  BestCasePolicy policy;
  ASSERT_TRUE(RunToQuiescence(sim.get(), &policy).ok());
  EXPECT_TRUE(sim->Quiescent());
  EXPECT_EQ(sim->updates_remaining(), 0u);
  EXPECT_EQ(sim->updates_executed(), 2u);
  EXPECT_TRUE(sim->maintainer().IsQuiescent());
}

TEST(SimulationTest, WorstCasePolicyExecutesAllUpdatesFirst) {
  std::unique_ptr<Simulation> sim = Example2Sim(Algorithm::kEca);
  WorstCasePolicy policy;
  // First two choices must be source updates.
  EXPECT_EQ(policy.Next(*sim), SimAction::kSourceUpdate);
  ASSERT_TRUE(sim->StepSourceUpdate().ok());
  EXPECT_EQ(policy.Next(*sim), SimAction::kSourceUpdate);
  ASSERT_TRUE(sim->StepSourceUpdate().ok());
  EXPECT_EQ(policy.Next(*sim), SimAction::kWarehouseStep);
}

TEST(SimulationTest, MeterCountsMessagesAndBytes) {
  SimulationOptions options;
  options.bytes_per_tuple = 4;
  std::unique_ptr<Simulation> sim = Example2Sim(Algorithm::kEca, options);
  BestCasePolicy policy;
  ASSERT_TRUE(RunToQuiescence(sim.get(), &policy).ok());
  // 2 updates -> 2 queries + 2 answers = 4 messages (M_ECA = 2k), plus 2
  // notifications (not part of M).
  EXPECT_EQ(sim->meter().messages(), 4);
  EXPECT_EQ(sim->meter().notifications(), 2);
  // Best case: A1 = ([1]) (1 tuple), A2 = ([4]) (1 tuple) -> 8 bytes at
  // S=4.
  EXPECT_EQ(sim->meter().bytes_transferred(), 8);
}

TEST(SimulationTest, SourceViewNowTracksUpdates) {
  std::unique_ptr<Simulation> sim = Example2Sim(Algorithm::kEca);
  Result<Relation> v0 = sim->SourceViewNow();
  ASSERT_TRUE(v0.ok());
  EXPECT_TRUE(v0->IsEmpty());
  ASSERT_TRUE(sim->StepSourceUpdate().ok());
  Result<Relation> v1 = sim->SourceViewNow();
  ASSERT_TRUE(v1.ok());
  EXPECT_EQ(v1->TotalPositive(), 1);  // ([1]) after insert(r2,[2,3])
}

TEST(SimulationTest, TraceNarratesEvents) {
  SimulationOptions options;
  options.instrument.record_trace = true;
  std::unique_ptr<Simulation> sim = Example2Sim(Algorithm::kEca, options);
  BestCasePolicy policy;
  ASSERT_TRUE(RunToQuiescence(sim.get(), &policy).ok());
  const std::string trace = sim->trace().ToString();
  EXPECT_NE(trace.find("source executes insert(r2,[2,3])"),
            std::string::npos);
  EXPECT_NE(trace.find("warehouse receives"), std::string::npos);
  EXPECT_NE(trace.find("source evaluates"), std::string::npos);
}

TEST(SimulationTest, BatchingShipsOneNotificationPerBatch) {
  Result<PaperExample> ex = MakePaperExample4();
  ASSERT_TRUE(ex.ok());
  SimulationOptions options;
  options.batch_size = 3;
  std::unique_ptr<Simulation> sim =
      MustMakeSim(ex->initial, ex->view, Algorithm::kEcaBatch, options);
  sim->SetUpdateScript(ex->updates);
  BestCasePolicy policy;
  ASSERT_TRUE(RunToQuiescence(sim.get(), &policy).ok());
  EXPECT_EQ(sim->meter().notifications(), 1);
  EXPECT_EQ(sim->meter().query_messages(), 1);
  EXPECT_EQ(sim->warehouse_view(), ex->expected_correct_final);
}

TEST(SimulationTest, UpdateIdsAssignedInExecutionOrder) {
  std::unique_ptr<Simulation> sim = Example2Sim(Algorithm::kEca);
  ASSERT_TRUE(sim->StepSourceUpdate().ok());
  ASSERT_TRUE(sim->StepSourceUpdate().ok());
  EXPECT_EQ(sim->updates_executed(), 2u);
}

TEST(SimulationTest, InvalidScriptSurfacesSourceError) {
  Result<PaperExample> ex = MakePaperExample2();
  ASSERT_TRUE(ex.ok());
  std::unique_ptr<Simulation> sim =
      MustMakeSim(ex->initial, ex->view, Algorithm::kEca);
  sim->SetUpdateScript({Update::Delete("r2", Tuple::Ints({9, 9}))});
  EXPECT_FALSE(sim->StepSourceUpdate().ok());
}

TEST(TraceTest, KindNamesAndSequence) {
  Trace t;
  t.Add(TraceEvent::Kind::kSourceUpdate, "first");
  t.Add(TraceEvent::Kind::kWarehouseAnswer, "second");
  ASSERT_EQ(t.events().size(), 2u);
  EXPECT_EQ(t.events()[0].sequence, 1u);
  EXPECT_EQ(t.events()[1].sequence, 2u);
  EXPECT_NE(t.ToString().find("S_up"), std::string::npos);
  EXPECT_NE(t.ToString().find("W_ans"), std::string::npos);
}

TEST(ChannelTest, FifoOrder) {
  Channel<int> ch;
  EXPECT_FALSE(ch.HasMessage());
  ch.Send(1);
  ch.Send(2);
  ch.Send(3);
  EXPECT_EQ(ch.size(), 3u);
  EXPECT_EQ(ch.Front(), 1);
  EXPECT_EQ(ch.Receive(), 1);
  EXPECT_EQ(ch.Receive(), 2);
  EXPECT_EQ(ch.Receive(), 3);
  EXPECT_FALSE(ch.HasMessage());
}

}  // namespace
}  // namespace wvm
