// Tests for the SC-enhanced ECA (Section 6's "SC can be seen as an
// enhancement to any of our algorithms"): the storage/traffic tradeoff and
// the exactness of locally bound deltas.
#include "core/eca_sc.h"

#include <gtest/gtest.h>

#include "common/strings.h"
#include "test_util.h"
#include "workload/generator.h"

namespace wvm {
namespace {

struct HybridFixture {
  Workload workload;
  std::vector<Update> updates;

  static HybridFixture Make(uint64_t seed, int64_t k = 10) {
    Random rng(seed);
    Result<Workload> w = MakeExample6Workload({16, 2}, &rng);
    EXPECT_TRUE(w.ok());
    Result<std::vector<Update>> updates = MakeMixedUpdates(*w, k, 0.35, &rng);
    EXPECT_TRUE(updates.ok());
    return HybridFixture{std::move(*w), std::move(*updates)};
  }
};

std::unique_ptr<Simulation> MakeHybridSim(const HybridFixture& f,
                                          std::set<std::string> replicated,
                                          EcaSc** out = nullptr) {
  auto maintainer =
      std::make_unique<EcaSc>(f.workload.view, std::move(replicated));
  if (out != nullptr) {
    *out = maintainer.get();
  }
  Result<std::unique_ptr<Simulation>> sim =
      Simulation::Create(f.workload.initial, f.workload.view,
                         std::move(maintainer), SimulationOptions());
  EXPECT_TRUE(sim.ok()) << sim.status();
  return std::move(*sim);
}

TEST(EcaScTest, InitializeRejectsUnknownReplicas) {
  HybridFixture f = HybridFixture::Make(1);
  EcaSc maintainer(f.workload.view, {"r9"});
  EXPECT_FALSE(maintainer.Initialize(f.workload.initial).ok());
}

TEST(EcaScTest, AllReplicatedBehavesLikeSc) {
  HybridFixture f = HybridFixture::Make(2);
  std::unique_ptr<Simulation> sim =
      MakeHybridSim(f, {"r1", "r2", "r3"});
  sim->SetUpdateScript(f.updates);
  RandomPolicy policy(2);
  ASSERT_TRUE(RunToQuiescence(sim.get(), &policy).ok());
  EXPECT_EQ(sim->meter().query_messages(), 0);  // everything local
  Result<Relation> expected = sim->SourceViewNow();
  EXPECT_EQ(sim->warehouse_view(), *expected);
  ConsistencyReport report = CheckConsistency(sim->state_log());
  EXPECT_TRUE(report.strongly_consistent) << report.ToString();
}

TEST(EcaScTest, NoneReplicatedBehavesLikeEca) {
  HybridFixture f = HybridFixture::Make(3);
  std::unique_ptr<Simulation> hybrid = MakeHybridSim(f, {});
  std::unique_ptr<Simulation> plain =
      MustMakeSim(f.workload.initial, f.workload.view, Algorithm::kEca);
  for (auto* sim : {hybrid.get(), plain.get()}) {
    sim->SetUpdateScript(f.updates);
    WorstCasePolicy policy;
    ASSERT_TRUE(RunToQuiescence(sim, &policy).ok());
  }
  EXPECT_EQ(hybrid->meter().query_messages(),
            plain->meter().query_messages());
  EXPECT_EQ(hybrid->warehouse_view(), plain->warehouse_view());
}

TEST(EcaScTest, DimensionReplicationMakesFactUpdatesCheaper) {
  // Replicating r2 and r3 makes every r1 update fully local; only r2/r3
  // updates still query the source (with the r1 position left unbound
  // being the only remote one... here r1 is remote so they query).
  HybridFixture f = HybridFixture::Make(4);
  EcaSc* maintainer = nullptr;
  std::unique_ptr<Simulation> sim =
      MakeHybridSim(f, {"r2", "r3"}, &maintainer);
  sim->SetUpdateScript(f.updates);
  RandomPolicy policy(4);
  ASSERT_TRUE(RunToQuiescence(sim.get(), &policy).ok());

  int64_t r1_updates = 0;
  for (const Update& u : f.updates) {
    r1_updates += u.relation == "r1";
  }
  // Only non-r1 updates produce queries.
  EXPECT_EQ(sim->meter().query_messages(),
            static_cast<int64_t>(f.updates.size()) - r1_updates);
  Result<Relation> expected = sim->SourceViewNow();
  EXPECT_EQ(sim->warehouse_view(), *expected);
  EXPECT_GT(maintainer->ReplicaTupleCount(), 0);
}

TEST(EcaScTest, ReplicasTrackSourceState) {
  HybridFixture f = HybridFixture::Make(5);
  EcaSc* maintainer = nullptr;
  std::unique_ptr<Simulation> sim = MakeHybridSim(f, {"r2"}, &maintainer);
  sim->SetUpdateScript(f.updates);
  BestCasePolicy policy;
  ASSERT_TRUE(RunToQuiescence(sim.get(), &policy).ok());
  EXPECT_EQ(*maintainer->replicas().Get("r2").value(),
            *sim->source_catalog().Get("r2").value());
}

class EcaScSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EcaScSweep, StronglyConsistentForEveryReplicationChoice) {
  HybridFixture f = HybridFixture::Make(GetParam());
  for (const std::set<std::string>& replicated :
       {std::set<std::string>{}, {"r1"}, {"r2"}, {"r1", "r3"},
        {"r2", "r3"}, {"r1", "r2", "r3"}}) {
    std::unique_ptr<Simulation> sim = MakeHybridSim(f, replicated);
    sim->SetUpdateScript(f.updates);
    RandomPolicy policy(GetParam() * 131);
    ASSERT_TRUE(RunToQuiescence(sim.get(), &policy).ok());
    ConsistencyReport report = CheckConsistency(sim->state_log());
    EXPECT_TRUE(report.strongly_consistent)
        << "replicated={" << Join(std::vector<std::string>(
                                      replicated.begin(), replicated.end()),
                                  ",")
        << "}: " << report.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EcaScSweep,
                         ::testing::Range<uint64_t>(1, 16));

TEST(EcaScTest, BindJoinPrunesWithEquiConstraints) {
  // An update to r3 binds position 3; binding replicated r2 must only
  // produce terms whose r2 rows join the bound Y value — J terms, not |r2|.
  HybridFixture f = HybridFixture::Make(6);
  EcaSc* maintainer = nullptr;
  std::unique_ptr<Simulation> sim = MakeHybridSim(f, {"r2"}, &maintainer);
  // One insert into r3 with an in-domain Y.
  sim->SetUpdateScript({Update::Insert("r3", Tuple::Ints({1, 3}))});
  BestCasePolicy policy;
  ASSERT_TRUE(RunToQuiescence(sim.get(), &policy).ok());
  // The sent query binds r3 (the update) and r2 (bind-join, J=2 rows):
  // 2 terms, each leaving only r1 unbound.
  EXPECT_EQ(sim->meter().query_messages(), 1);
  EXPECT_EQ(sim->meter().query_terms(), 2);
  Result<Relation> expected = sim->SourceViewNow();
  EXPECT_EQ(sim->warehouse_view(), *expected);
}

}  // namespace
}  // namespace wvm
