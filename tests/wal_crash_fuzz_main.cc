// Standalone crash-fuzz driver for the on-disk WAL — the CI entry point
// (and the long-soak tool) for src/recovery/wal_fuzz.h. Runs a contiguous
// seed sweep, each seed forking a child that is killed mid-write(2) over
// real segment files, and verifies the recovery contract on every one.
//
//   wal_crash_fuzz [--seeds=N] [--start=S] [--max-records=R] [--dir=PATH]
//
// Exits 0 iff every seed upholds the contract; prints the first violating
// seed (which replays deterministically) otherwise.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>

#include "recovery/wal_fuzz.h"

namespace {

bool ParseFlag(const char* arg, const char* name, long long* out) {
  const size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  char* end = nullptr;
  const long long v = std::strtoll(arg + len + 1, &end, 10);
  if (end == nullptr || *end != '\0') return false;
  *out = v;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  long long seeds = 64;
  long long start = 1;
  long long max_records = 300;
  std::string dir;
  for (int i = 1; i < argc; ++i) {
    long long v = 0;
    if (ParseFlag(argv[i], "--seeds", &v)) {
      seeds = v;
    } else if (ParseFlag(argv[i], "--start", &v)) {
      start = v;
    } else if (ParseFlag(argv[i], "--max-records", &v)) {
      max_records = v;
    } else if (std::strncmp(argv[i], "--dir=", 6) == 0) {
      dir = argv[i] + 6;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--seeds=N] [--start=S] [--max-records=R] "
                   "[--dir=PATH]\n",
                   argv[0]);
      return 2;
    }
  }
  if (seeds <= 0 || start <= 0 || max_records <= 0) {
    std::fprintf(stderr, "wal_crash_fuzz: flags must be positive\n");
    return 2;
  }
  if (dir.empty()) {
    dir = (std::filesystem::temp_directory_path() / "wvm-wal-crash-fuzz")
              .string();
  }

  int killed = 0;
  int clean = 0;
  int64_t torn = 0;
  for (long long seed = start; seed < start + seeds; ++seed) {
    wvm::WalFuzzOptions options;
    options.seed = static_cast<uint64_t>(seed);
    options.dir = dir + "/seed-" + std::to_string(seed);
    options.max_records = static_cast<int>(max_records);
    std::error_code ec;
    std::filesystem::remove_all(options.dir, ec);
    wvm::Result<wvm::WalFuzzReport> report = wvm::RunWalCrashFuzz(options);
    if (!report.ok()) {
      std::fprintf(stderr, "FAIL seed %lld: %s\n", seed,
                   report.status().ToString().c_str());
      return 1;
    }
    killed += report->killed ? 1 : 0;
    clean += report->killed ? 0 : 1;
    torn += report->torn_tail_truncations;
  }
  std::printf(
      "wal_crash_fuzz: %lld seeds ok (%d killed mid-write, %d ran clean, "
      "%lld torn tails truncated)\n",
      seeds, killed, clean, static_cast<long long>(torn));
  if (killed == 0) {
    std::fprintf(stderr,
                 "wal_crash_fuzz: no seed died mid-write; the sweep "
                 "exercised nothing\n");
    return 1;
  }
  return 0;
}
