// Tests for the compiled delta-plan layer (src/query/compiled_plan.*) and
// the columnar storage structures backing it (ColumnBlock, the
// StoredRelation column mirror, RelationKeyIndex, the catalog's key-index
// cache). The compiled executor must be behavior-identical to the
// interpreted evaluator — results, error statuses, and simulation counters
// alike — with the interpreted path kept as the differential oracle.
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "query/catalog.h"
#include "query/compiled_plan.h"
#include "query/evaluator.h"
#include "query/term.h"
#include "query/view_def.h"
#include "relational/column_block.h"
#include "relational/key_index.h"
#include "relational/relation.h"
#include "storage/stored_relation.h"
#include "test_util.h"

namespace wvm {
namespace {

// r0(a0,b0) |><| r1(b1,c1) |><| r2(c2,d2) on b0=b1, c1=c2, with a residual
// range filter — a three-step chain exercising seed choice, equi-key
// resolution, residual fusion, and projection composition.
std::vector<BaseRelationDef> ChainDefs() {
  return {{"r0", Schema::Ints({"a0", "b0"})},
          {"r1", Schema::Ints({"b1", "c1"})},
          {"r2", Schema::Ints({"c2", "d2"})}};
}

ViewDefinitionPtr ChainView() {
  Predicate cond = Predicate::And(
      Predicate::Compare(Operand::Attr("b0"), CompareOp::kEq,
                         Operand::Attr("b1")),
      Predicate::And(
          Predicate::Compare(Operand::Attr("c1"), CompareOp::kEq,
                             Operand::Attr("c2")),
          Predicate::Compare(Operand::Attr("d2"), CompareOp::kLe,
                             Operand::ConstInt(50))));
  auto view = ViewDefinition::Create("V", ChainDefs(), {"a0", "d2"},
                                     std::move(cond));
  EXPECT_TRUE(view.ok()) << view.status();
  return *view;
}

Catalog ChainCatalog() {
  Catalog catalog;
  for (const BaseRelationDef& def : ChainDefs()) {
    EXPECT_TRUE(catalog.Define(def).ok());
  }
  Relation* r0 = *catalog.GetMutable("r0");
  Relation* r1 = *catalog.GetMutable("r1");
  Relation* r2 = *catalog.GetMutable("r2");
  r0->Insert(Tuple::Ints({1, 10}), 2);
  r0->Insert(Tuple::Ints({2, 20}), -1);
  r0->Insert(Tuple::Ints({3, 10}), 1);
  r1->Insert(Tuple::Ints({10, 7}), 1);
  r1->Insert(Tuple::Ints({20, 7}), 3);
  r1->Insert(Tuple::Ints({20, 8}), -2);
  r2->Insert(Tuple::Ints({7, 42}), 1);
  r2->Insert(Tuple::Ints({7, 99}), 1);  // filtered by d2 <= 50
  r2->Insert(Tuple::Ints({8, 5}), 2);
  return catalog;
}

void ExpectSameRelation(const Relation& compiled, const Relation& oracle,
                        const std::string& label) {
  EXPECT_TRUE(compiled == oracle)
      << label << "\n  compiled:    " << compiled.ToString()
      << "\n  interpreted: " << oracle.ToString();
  EXPECT_EQ(compiled.SortedEntries(), oracle.SortedEntries()) << label;
}

TEST(CompiledPlanTest, ChainViewMaskZeroPlanShape) {
  ViewDefinitionPtr view = ChainView();
  auto plan = view->CompiledPlanFor(0);
  ASSERT_TRUE(plan.ok()) << plan.status();
  const CompiledDeltaPlan& p = **plan;

  EXPECT_EQ(p.bound_mask(), 0u);
  ASSERT_EQ(p.order().size(), 3u);
  ASSERT_EQ(p.steps().size(), 2u);
  // With no bound operand the seed is position 0 and the chain edges make
  // every subsequent step an equi-probe, never a cross product.
  EXPECT_EQ(p.order()[0], 0u);
  for (const CompiledJoinStep& step : p.steps()) {
    EXPECT_FALSE(step.acc_keys.empty());
    EXPECT_EQ(step.acc_keys.size(), step.op_keys.size());
  }
  // The non-equi conjunct (d2 <= 50) fuses into a flat comparison leaf; no
  // fallback predicate walk is needed for this view.
  EXPECT_FALSE(p.uses_fallback_residual());
  ASSERT_EQ(p.residual().size(), 1u);
  EXPECT_EQ(p.residual()[0].op, CompareOp::kLe);
  // Projection is {a0, d2}.
  ASSERT_EQ(p.output_cols().size(), 2u);
  EXPECT_EQ(p.output_schema().size(), 2u);
}

TEST(CompiledPlanTest, BoundMaskSeedsAtBoundOperand) {
  ViewDefinitionPtr view = ChainView();
  for (size_t bound = 0; bound < 3; ++bound) {
    auto plan = view->CompiledPlanFor(uint64_t{1} << bound);
    ASSERT_TRUE(plan.ok()) << plan.status();
    // The bound operand is the seed: a delta term starts from the
    // substituted update tuple (a singleton), so every join step probes an
    // index rather than scanning from an arbitrary relation.
    EXPECT_EQ((*plan)->order()[0], bound) << "bound position " << bound;
    EXPECT_EQ((*plan)->steps().size(), 2u);
  }
}

TEST(CompiledPlanTest, PlanCacheReturnsSamePlanUntilInvalidated) {
  ViewDefinitionPtr view = ChainView();
  auto a = view->CompiledPlanFor(0);
  auto b = view->CompiledPlanFor(0);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->get(), b->get()) << "cache must hand out the same plan";

  const uint64_t epoch = view->compiled_plan_epoch();
  view->InvalidateCompiledPlans();
  EXPECT_EQ(view->compiled_plan_epoch(), epoch + 1);
  auto c = view->CompiledPlanFor(0);
  ASSERT_TRUE(c.ok());
  EXPECT_NE(a->get(), c->get()) << "invalidation must drop cached plans";
  // The stale plan is still executable: plans hold no relation data.
  Catalog catalog = ChainCatalog();
  Term term = Term::FromView(view);
  auto via_stale = ExecuteCompiledPlan(**a, term, catalog);
  auto via_fresh = ExecuteCompiledPlan(**c, term, catalog);
  ASSERT_TRUE(via_stale.ok() && via_fresh.ok());
  ExpectSameRelation(*via_stale, *via_fresh, "stale vs fresh plan");
}

TEST(CompiledPlanTest, CompiledMatchesInterpretedOnChainView) {
  ViewDefinitionPtr view = ChainView();
  Catalog catalog = ChainCatalog();

  std::vector<Term> terms;
  for (int coefficient : {+1, -1}) {
    Term t = Term::FromView(view);
    t.set_coefficient(coefficient);
    terms.push_back(t);
  }
  for (const Update& u : {Update::Insert("r0", Tuple::Ints({5, 20})),
                          Update::Delete("r1", Tuple::Ints({10, 7})),
                          Update::Insert("r2", Tuple::Ints({7, 13}))}) {
    auto t = Term::FromView(view).Substitute(u);
    ASSERT_TRUE(t.has_value());
    terms.push_back(*t);
  }
  // Doubly substituted (two bound positions), negated.
  auto twice = Term::FromView(view)
                   .Substitute(Update::Insert("r0", Tuple::Ints({5, 20})));
  ASSERT_TRUE(twice.has_value());
  twice = twice->Substitute(Update::Delete("r2", Tuple::Ints({7, 13})));
  ASSERT_TRUE(twice.has_value());
  twice->set_coefficient(-1);
  terms.push_back(*twice);

  for (size_t i = 0; i < terms.size(); ++i) {
    auto compiled = EvaluateTermCompiled(terms[i], catalog);
    auto interpreted = EvaluateTermInterpreted(terms[i], catalog);
    ASSERT_TRUE(compiled.ok()) << compiled.status();
    ASSERT_TRUE(interpreted.ok()) << interpreted.status();
    ExpectSameRelation(*compiled, *interpreted,
                       "term " + std::to_string(i) + ": " +
                           terms[i].ToString());
  }
}

TEST(CompiledPlanTest, ToggleSelectsTheSameResults) {
  ViewDefinitionPtr view = ChainView();
  Catalog catalog = ChainCatalog();
  Term term = Term::FromView(view);

  Relation on = [&] {
    ScopedCompiledPlans scoped(true);
    auto r = EvaluateTerm(term, catalog);
    EXPECT_TRUE(r.ok()) << r.status();
    return *r;
  }();
  Relation off = [&] {
    ScopedCompiledPlans scoped(false);
    auto r = EvaluateTerm(term, catalog);
    EXPECT_TRUE(r.ok()) << r.status();
    return *r;
  }();
  ExpectSameRelation(on, off, "EvaluateTerm with toggle on vs off");
}

TEST(CompiledPlanTest, BoundArityErrorMatchesInterpreted) {
  ViewDefinitionPtr view = ChainView();
  Catalog catalog = ChainCatalog();
  // An update whose tuple does not match the relation's arity. Substitution
  // does not validate arity; both evaluators must reject identically.
  auto term = Term::FromView(view).Substitute(
      Update::Insert("r1", Tuple::Ints({1, 2, 3})));
  ASSERT_TRUE(term.has_value());

  auto compiled = EvaluateTermCompiled(*term, catalog);
  auto interpreted = EvaluateTermInterpreted(*term, catalog);
  ASSERT_FALSE(compiled.ok());
  ASSERT_FALSE(interpreted.ok());
  EXPECT_EQ(compiled.status().ToString(), interpreted.status().ToString());
}

TEST(CompiledPlanTest, MissingRelationErrorMatchesInterpreted) {
  ViewDefinitionPtr view = ChainView();
  Catalog partial;
  // Only r0 defined; the chain's later operands are missing. The compiled
  // executor validates every operand up front, so the error surfaces even
  // though the r1 probe would never run (r0 is empty => empty accumulator).
  ASSERT_TRUE(partial.Define(ChainDefs()[0]).ok());
  Term term = Term::FromView(view);

  auto compiled = EvaluateTermCompiled(term, partial);
  auto interpreted = EvaluateTermInterpreted(term, partial);
  ASSERT_FALSE(compiled.ok());
  ASSERT_FALSE(interpreted.ok());
  EXPECT_EQ(compiled.status().ToString(), interpreted.status().ToString());
}

TEST(CompiledPlanTest, ExecuteOnOperandsMatchesCatalogExecution) {
  ViewDefinitionPtr view = ChainView();
  Catalog catalog = ChainCatalog();
  auto plan = view->CompiledPlanFor(0);
  ASSERT_TRUE(plan.ok()) << plan.status();

  std::vector<Relation> operands;
  for (const BaseRelationDef& def : ChainDefs()) {
    operands.push_back(**catalog.Get(def.name));
  }
  auto on_operands = ExecuteCompiledPlanOnOperands(**plan, operands);
  auto on_catalog = ExecuteCompiledPlan(**plan, Term::FromView(view), catalog);
  ASSERT_TRUE(on_operands.ok()) << on_operands.status();
  ASSERT_TRUE(on_catalog.ok()) << on_catalog.status();
  ExpectSameRelation(*on_operands, *on_catalog, "operand-relation execution");

  // Wrong operand count is rejected, mirroring the interpreted join.
  operands.pop_back();
  auto bad = ExecuteCompiledPlanOnOperands(**plan, operands);
  EXPECT_FALSE(bad.ok());
}

// Counter-for-counter: a full simulation run must be bit-identical with
// compiled plans on and off — same view contents, same M/B metering, same
// I/O statistics, same recorded state sequences. The compiled path may only
// change how in-memory joins are executed, never what is charged.
TEST(CompiledPlanTest, SimulationCountersIdenticalOnAndOff) {
  Result<std::vector<PaperExample>> examples = AllPaperExamples();
  ASSERT_TRUE(examples.ok()) << examples.status();
  for (const PaperExample& ex : *examples) {
    auto run = [&](bool compiled) {
      ScopedCompiledPlans scoped(compiled);
      Result<Algorithm> algorithm = ParseAlgorithm(ex.algorithm);
      EXPECT_TRUE(algorithm.ok()) << algorithm.status();
      SimulationOptions options;
      options.engine.compiled_plans = compiled;
      std::unique_ptr<Simulation> sim =
          MustMakeSim(ex.initial, ex.view, *algorithm, options);
      sim->SetUpdateScript(ex.updates);
      ScriptedPolicy policy(ex.actions);
      Status status = RunToQuiescence(sim.get(), &policy);
      EXPECT_TRUE(status.ok()) << ex.name << ": " << status;
      return sim;
    };
    std::unique_ptr<Simulation> on = run(true);
    std::unique_ptr<Simulation> off = run(false);

    ExpectSameRelation(on->warehouse_view(), off->warehouse_view(), ex.name);
    EXPECT_EQ(on->meter().ToString(), off->meter().ToString()) << ex.name;
    EXPECT_EQ(on->io_stats().page_reads, off->io_stats().page_reads)
        << ex.name;
    EXPECT_EQ(on->io_stats().index_probes, off->io_stats().index_probes)
        << ex.name;
    EXPECT_EQ(on->io_stats().full_scans, off->io_stats().full_scans)
        << ex.name;
    EXPECT_EQ(on->io_stats().terms_evaluated, off->io_stats().terms_evaluated)
        << ex.name;
    EXPECT_EQ(on->state_log().warehouse_view_states,
              off->state_log().warehouse_view_states)
        << ex.name;
    EXPECT_EQ(on->state_log().source_view_states,
              off->state_log().source_view_states)
        << ex.name;
  }
}

TEST(ColumnarStorageTest, ColumnBlockRoundTripsRelations) {
  Relation r(Schema::Ints({"x", "y"}));
  r.Insert(Tuple::Ints({1, 2}), 3);
  r.Insert(Tuple::Ints({4, 5}), -2);
  r.Insert(Tuple::Ints({6, 7}), 1);

  ColumnBlock block = ColumnBlock::FromRelation(r);
  EXPECT_EQ(block.width(), 2u);
  EXPECT_EQ(block.rows(), 3u);

  Relation back = block.Gather(r.schema(), {0, 1}, /*scale=*/1);
  EXPECT_TRUE(back == r) << back.ToString() << " vs " << r.ToString();

  // Scaling multiplies every multiplicity; scale 0 annihilates.
  Relation doubled = block.Gather(r.schema(), {0, 1}, /*scale=*/-2);
  EXPECT_EQ(doubled.CountOf(Tuple::Ints({1, 2})), -6);
  EXPECT_EQ(doubled.CountOf(Tuple::Ints({4, 5})), 4);
  Relation zero = block.Gather(r.schema(), {0, 1}, /*scale=*/0);
  EXPECT_EQ(zero.NumDistinct(), 0u);

  // Projection through out_cols, including column reordering.
  Relation swapped = block.Gather(Schema::Ints({"y", "x"}), {1, 0}, 1);
  EXPECT_EQ(swapped.CountOf(Tuple::Ints({2, 1})), 3);
  EXPECT_EQ(swapped.CountOf(Tuple::Ints({5, 4})), -2);
}

TEST(ColumnarStorageTest, ColumnBlockSignedTupleAndJoinAppend) {
  ColumnBlock seed = ColumnBlock::FromSignedTuple(Tuple::Ints({7, 8}), -1);
  ASSERT_EQ(seed.rows(), 1u);
  EXPECT_EQ(seed.count(0), -1);

  ColumnBlock joined(3);
  joined.AppendJoined(seed, 0, Tuple::Ints({9}), 4);
  ASSERT_EQ(joined.rows(), 1u);
  EXPECT_EQ(joined.at(0, 0), Value(int64_t{7}));
  EXPECT_EQ(joined.at(0, 2), Value(int64_t{9}));
  EXPECT_EQ(joined.count(0), -4) << "multiplicities multiply through joins";
}

TEST(ColumnarStorageTest, StoredRelationColumnsStayInLockstep) {
  BaseRelationDef def{"t", Schema::Ints({"k", "v"})};
  StoredRelation rel(def, /*tuples_per_block=*/2);

  auto expect_lockstep = [&] {
    for (size_t c = 0; c < def.schema.size(); ++c) {
      const std::vector<Value>& col = rel.ColumnValues(c);
      ASSERT_EQ(col.size(), rel.NumRows());
      for (size_t i = 0; i < rel.NumRows(); ++i) {
        EXPECT_EQ(col[i], rel.rows()[i].value(c))
            << "column " << c << " row " << i;
      }
    }
  };

  ASSERT_TRUE(rel.Insert(Tuple::Ints({3, 30})).ok());
  ASSERT_TRUE(rel.Insert(Tuple::Ints({1, 10})).ok());
  expect_lockstep();

  // Declaring a clustered index sorts rows; columns must follow.
  ASSERT_TRUE(rel.AddIndex("k", /*clustered=*/true).ok());
  expect_lockstep();
  EXPECT_EQ(rel.rows()[0].value(0), Value(int64_t{1}));

  // Clustered insert lands at the sorted offset in rows AND columns.
  ASSERT_TRUE(rel.Insert(Tuple::Ints({2, 20})).ok());
  expect_lockstep();
  EXPECT_EQ(rel.ColumnValues(0)[1], Value(int64_t{2}));

  ASSERT_TRUE(rel.Delete(Tuple::Ints({2, 20})).ok());
  expect_lockstep();
  EXPECT_EQ(rel.NumRows(), 2u);

  ASSERT_TRUE(rel.BulkLoad({Tuple::Ints({5, 50}), Tuple::Ints({0, 0})}).ok());
  expect_lockstep();
  EXPECT_EQ(rel.rows()[0].value(0), Value(int64_t{0})) << "bulk load re-sorts";
}

TEST(ColumnarStorageTest, EstimatedMatchesPerKeyIsMonotone) {
  BaseRelationDef def{"t", Schema::Ints({"k", "v"})};
  StoredRelation rel(def, 2);
  EXPECT_EQ(rel.EstimatedMatchesPerKey("k"), 0.0) << "empty relation";

  ASSERT_TRUE(rel.Insert(Tuple::Ints({1, 10})).ok());
  double prev = rel.EstimatedMatchesPerKey("k");
  EXPECT_EQ(prev, 1.0);
  // Repeating the same key can only raise the per-key fan-out estimate.
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(rel.Insert(Tuple::Ints({1, 20 + i})).ok());
    const double est = rel.EstimatedMatchesPerKey("k");
    EXPECT_GE(est, prev);
    prev = est;
  }
  EXPECT_EQ(prev, 5.0);
  EXPECT_EQ(rel.EstimatedMatchesPerKey("nope"), 0.0) << "unknown attribute";
}

TEST(ColumnarStorageTest, RelationKeyIndexFindsExactMatches) {
  Relation r(Schema::Ints({"x", "y"}));
  r.Insert(Tuple::Ints({1, 2}), 2);
  r.Insert(Tuple::Ints({1, 3}), -1);
  r.Insert(Tuple::Ints({4, 2}), 1);

  RelationKeyIndex index(r.shared_entries(), {0});
  EXPECT_EQ(index.num_rows(), 3u);

  const Value probe(int64_t{1});
  auto value_at = [&](size_t) -> const Value& { return probe; };
  int64_t total = 0;
  size_t hits = 0;
  index.ForEachMatch(RelationKeyIndex::ProbeHash(1, value_at), value_at,
                     [&](const Tuple& row, int64_t count) {
                       EXPECT_EQ(row.value(0), probe);
                       total += count;
                       ++hits;
                     });
  EXPECT_EQ(hits, 2u);
  EXPECT_EQ(total, 1) << "counts 2 and -1 both surface";

  // Empty key list: every row matches (the degenerate cross-product probe).
  RelationKeyIndex cross(r.shared_entries(), {});
  size_t all = 0;
  auto no_values = [](size_t) -> const Value& {
    static const Value v;
    return v;
  };
  cross.ForEachMatch(RelationKeyIndex::ProbeHash(0, no_values), no_values,
                     [&](const Tuple&, int64_t) { ++all; });
  EXPECT_EQ(all, 3u);
}

TEST(ColumnarStorageTest, CatalogKeyIndexCachingAndInvalidation) {
  Catalog catalog = ChainCatalog();
  auto a = catalog.KeyIndexFor("r1", {0});
  auto b = catalog.KeyIndexFor("r1", {0});
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->get(), b->get()) << "second lookup must hit the cache";

  // Distinct key columns are distinct cache entries.
  auto other = catalog.KeyIndexFor("r1", {1});
  ASSERT_TRUE(other.ok());
  EXPECT_NE(a->get(), other->get());

  // Mutating the relation drops its cached indexes; the old index keeps its
  // pinned snapshot and stays consistent (it just no longer sees new rows).
  ASSERT_TRUE(catalog.Apply(Update::Insert("r1", Tuple::Ints({33, 1}))).ok());
  auto c = catalog.KeyIndexFor("r1", {0});
  ASSERT_TRUE(c.ok());
  EXPECT_NE(a->get(), c->get()) << "mutation must invalidate the index";
  EXPECT_EQ((*a)->num_rows() + 1, (*c)->num_rows());

  const Value probe(int64_t{33});
  auto value_at = [&](size_t) -> const Value& { return probe; };
  size_t stale_hits = 0;
  size_t fresh_hits = 0;
  (*a)->ForEachMatch(RelationKeyIndex::ProbeHash(1, value_at), value_at,
                     [&](const Tuple&, int64_t) { ++stale_hits; });
  (*c)->ForEachMatch(RelationKeyIndex::ProbeHash(1, value_at), value_at,
                     [&](const Tuple&, int64_t) { ++fresh_hits; });
  EXPECT_EQ(stale_hits, 0u);
  EXPECT_EQ(fresh_hits, 1u);

  EXPECT_FALSE(catalog.KeyIndexFor("missing", {0}).ok());
  EXPECT_FALSE(catalog.KeyIndexFor("r1", {9}).ok()) << "column out of range";
}

}  // namespace
}  // namespace wvm
