#ifndef WVM_TESTS_TEST_UTIL_H_
#define WVM_TESTS_TEST_UTIL_H_

#include <gtest/gtest.h>

#include <memory>

#include "consistency/checker.h"
#include "core/factory.h"
#include "sim/policies.h"
#include "sim/simulation.h"
#include "workload/scenarios.h"

namespace wvm {

// Instantiates a maintainer from its declarative spec, failing the test on
// any setup error.
inline std::unique_ptr<ViewMaintainer> MustMakeMaintainer(
    const MaintainerSpec& spec, ViewDefinitionPtr view) {
  Result<std::unique_ptr<ViewMaintainer>> maintainer =
      MakeMaintainer(spec, std::move(view));
  EXPECT_TRUE(maintainer.ok()) << maintainer.status();
  return std::move(*maintainer);
}

// Builds a ready-to-run simulation for `spec` over the given state,
// failing the test on any setup error.
inline std::unique_ptr<Simulation> MustMakeSim(
    const Catalog& initial, ViewDefinitionPtr view, const MaintainerSpec& spec,
    SimulationOptions options = SimulationOptions()) {
  std::unique_ptr<ViewMaintainer> maintainer = MustMakeMaintainer(spec, view);
  Result<std::unique_ptr<Simulation>> sim = Simulation::Create(
      initial, std::move(view), std::move(maintainer), options);
  EXPECT_TRUE(sim.ok()) << sim.status();
  return std::move(*sim);
}

// Algorithm-only convenience over the spec-based overload.
inline std::unique_ptr<Simulation> MustMakeSim(
    const Catalog& initial, ViewDefinitionPtr view, Algorithm algorithm,
    SimulationOptions options = SimulationOptions(), int rv_period = 1) {
  MaintainerSpec spec;
  spec.algorithm = algorithm;
  spec.rv_period = rv_period;
  return MustMakeSim(initial, std::move(view), spec, std::move(options));
}

// Runs a paper example under its designated algorithm with the paper's
// exact interleaving and returns the simulation for inspection.
inline std::unique_ptr<Simulation> RunPaperExample(const PaperExample& ex) {
  Result<Algorithm> algorithm = ParseAlgorithm(ex.algorithm);
  EXPECT_TRUE(algorithm.ok()) << algorithm.status();
  std::unique_ptr<Simulation> sim =
      MustMakeSim(ex.initial, ex.view, *algorithm);
  sim->SetUpdateScript(ex.updates);
  ScriptedPolicy policy(ex.actions);
  Status run = RunToQuiescence(sim.get(), &policy);
  EXPECT_TRUE(run.ok()) << ex.name << ": " << run;
  return sim;
}

// Runs `algorithm` over the example's setup with a seeded random
// interleaving and reports the observed consistency levels.
inline ConsistencyReport RunRandomized(const Catalog& initial,
                                       ViewDefinitionPtr view,
                                       Algorithm algorithm,
                                       const std::vector<Update>& updates,
                                       uint64_t seed, int rv_period = 1,
                                       int batch_size = 1) {
  SimulationOptions options;
  options.batch_size = batch_size;
  std::unique_ptr<Simulation> sim =
      MustMakeSim(initial, std::move(view), algorithm, options, rv_period);
  sim->SetUpdateScript(updates);
  RandomPolicy policy(seed);
  Status run = RunToQuiescence(sim.get(), &policy);
  EXPECT_TRUE(run.ok()) << run;
  return CheckConsistency(sim->state_log());
}

}  // namespace wvm

#endif  // WVM_TESTS_TEST_UTIL_H_
