// Replays Examples 1-5 and 7-9 of the paper event by event and asserts the
// exact outcomes the paper derives — including the anomalies of the basic
// algorithm and the corrected results under ECA / ECA-Key.
#include <gtest/gtest.h>

#include "test_util.h"

namespace wvm {
namespace {

TEST(PaperExamplesTest, Example1BasicIsCorrectWithoutConcurrency) {
  Result<PaperExample> ex = MakePaperExample1();
  ASSERT_TRUE(ex.ok()) << ex.status();
  std::unique_ptr<Simulation> sim = RunPaperExample(*ex);
  // Final view is ([1],[1]): duplicate retention keeps both derivations.
  EXPECT_EQ(sim->warehouse_view(), ex->expected_algorithm_final);
  EXPECT_EQ(sim->warehouse_view().CountOf(Tuple::Ints({1})), 2);
}

TEST(PaperExamplesTest, Example2InsertAnomalyReproduced) {
  Result<PaperExample> ex = MakePaperExample2();
  ASSERT_TRUE(ex.ok());
  std::unique_ptr<Simulation> sim = RunPaperExample(*ex);
  // The basic algorithm ends at ([1],[4],[4]) — the anomaly.
  EXPECT_EQ(sim->warehouse_view(), ex->expected_algorithm_final);
  EXPECT_NE(sim->warehouse_view(), ex->expected_correct_final);
  // And the checker flags it: not even weakly consistent.
  ConsistencyReport report = CheckConsistency(sim->state_log());
  EXPECT_FALSE(report.convergent);
  EXPECT_FALSE(report.weakly_consistent);
}

TEST(PaperExamplesTest, Example2IntermediateStatesMatchPaper) {
  Result<PaperExample> ex = MakePaperExample2();
  ASSERT_TRUE(ex.ok());
  std::unique_ptr<Simulation> sim = RunPaperExample(*ex);
  // Step 6 of the paper: after A1 the view is ([1],[4]); after A2 it is
  // ([1],[4],[4]).
  const std::vector<Relation> states =
      StateLog::Dedup(sim->state_log().warehouse_view_states);
  ASSERT_EQ(states.size(), 3u);  // empty -> ([1],[4]) -> ([1],[4],[4])
  EXPECT_TRUE(states[0].IsEmpty());
  EXPECT_EQ(states[1], Relation::FromTuples(ex->view->output_schema(),
                                            {Tuple::Ints({1}),
                                             Tuple::Ints({4})}));
}

TEST(PaperExamplesTest, Example3DeletionAnomalyReproduced) {
  Result<PaperExample> ex = MakePaperExample3();
  ASSERT_TRUE(ex.ok());
  std::unique_ptr<Simulation> sim = RunPaperExample(*ex);
  // Both answers are empty; the view never changes and keeps stale [1,3].
  EXPECT_EQ(sim->warehouse_view(), ex->expected_algorithm_final);
  EXPECT_FALSE(sim->warehouse_view().IsEmpty());
  EXPECT_TRUE(ex->expected_correct_final.IsEmpty());
  EXPECT_FALSE(CheckConsistency(sim->state_log()).convergent);
}

TEST(PaperExamplesTest, Example2FixedByEca) {
  Result<PaperExample> ex = MakePaperExample2();
  ASSERT_TRUE(ex.ok());
  ex->algorithm = "eca";
  std::unique_ptr<Simulation> sim = RunPaperExample(*ex);
  EXPECT_EQ(sim->warehouse_view(), ex->expected_correct_final);
  EXPECT_TRUE(CheckConsistency(sim->state_log()).strongly_consistent);
}

TEST(PaperExamplesTest, Example3FixedByEca) {
  Result<PaperExample> ex = MakePaperExample3();
  ASSERT_TRUE(ex.ok());
  ex->algorithm = "eca";
  std::unique_ptr<Simulation> sim = RunPaperExample(*ex);
  EXPECT_TRUE(sim->warehouse_view().IsEmpty());
  EXPECT_TRUE(CheckConsistency(sim->state_log()).strongly_consistent);
}

TEST(PaperExamplesTest, Example4EcaThreeConcurrentInserts) {
  Result<PaperExample> ex = MakePaperExample4();
  ASSERT_TRUE(ex.ok());
  std::unique_ptr<Simulation> sim = RunPaperExample(*ex);
  EXPECT_EQ(sim->warehouse_view(), ex->expected_correct_final);
  ConsistencyReport report = CheckConsistency(sim->state_log());
  EXPECT_TRUE(report.strongly_consistent) << report.ToString();
}

TEST(PaperExamplesTest, Example4ViewOnlyMovesOnceUqsDrains) {
  // ECA batches answers in COLLECT: the view must stay empty through A1 and
  // A2 and jump to ([1],[4]) only at A3 (when UQS empties).
  Result<PaperExample> ex = MakePaperExample4();
  ASSERT_TRUE(ex.ok());
  std::unique_ptr<Simulation> sim = RunPaperExample(*ex);
  const std::vector<Relation> states =
      StateLog::Dedup(sim->state_log().warehouse_view_states);
  ASSERT_EQ(states.size(), 2u);
  EXPECT_TRUE(states[0].IsEmpty());
  EXPECT_EQ(states[1], ex->expected_correct_final);
}

TEST(PaperExamplesTest, Example5EcaKey) {
  Result<PaperExample> ex = MakePaperExample5();
  ASSERT_TRUE(ex.ok());
  std::unique_ptr<Simulation> sim = RunPaperExample(*ex);
  // Final view ([3,3],[3,4]): the key-delete removed [1,3]/[1,4]-shaped
  // tuples locally and the duplicate [3,4] was suppressed.
  EXPECT_EQ(sim->warehouse_view(), ex->expected_correct_final);
  EXPECT_TRUE(CheckConsistency(sim->state_log()).strongly_consistent);
  // Only the two inserts queried the source; the delete was local.
  EXPECT_EQ(sim->meter().query_messages(), 2);
}

TEST(PaperExamplesTest, Example7EcaInterleavedAnswers) {
  Result<PaperExample> ex = MakePaperExample7();
  ASSERT_TRUE(ex.ok());
  std::unique_ptr<Simulation> sim = RunPaperExample(*ex);
  EXPECT_EQ(sim->warehouse_view(), ex->expected_correct_final);
  EXPECT_TRUE(CheckConsistency(sim->state_log()).strongly_consistent);
}

TEST(PaperExamplesTest, Example8EcaDeletions) {
  Result<PaperExample> ex = MakePaperExample8();
  ASSERT_TRUE(ex.ok());
  std::unique_ptr<Simulation> sim = RunPaperExample(*ex);
  EXPECT_TRUE(sim->warehouse_view().IsEmpty());
  EXPECT_TRUE(CheckConsistency(sim->state_log()).strongly_consistent);
}

TEST(PaperExamplesTest, Example9EcaDeleteTheneInsert) {
  Result<PaperExample> ex = MakePaperExample9();
  ASSERT_TRUE(ex.ok());
  std::unique_ptr<Simulation> sim = RunPaperExample(*ex);
  EXPECT_EQ(sim->warehouse_view(), ex->expected_correct_final);
  EXPECT_EQ(sim->warehouse_view().CountOf(Tuple::Ints({1})), 1);
  EXPECT_TRUE(CheckConsistency(sim->state_log()).strongly_consistent);
}

TEST(PaperExamplesTest, AllExamplesExpectationsAreSelfConsistent) {
  // The hardcoded expected_correct_final of every example must equal the
  // view evaluated at the final source state.
  Result<std::vector<PaperExample>> all = AllPaperExamples();
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->size(), 8u);
  for (const PaperExample& ex : *all) {
    Catalog state = ex.initial.Clone();
    for (Update u : ex.updates) {
      ASSERT_TRUE(state.Apply(u).ok()) << ex.name;
    }
    Result<Relation> v = EvaluateView(ex.view, state);
    ASSERT_TRUE(v.ok()) << ex.name;
    EXPECT_EQ(*v, ex.expected_correct_final) << ex.name;
  }
}

}  // namespace
}  // namespace wvm
