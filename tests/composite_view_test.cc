// Tests for composite (union / difference) views and CompositeEca — the
// "more complex relational algebra expressions" extension of Section 7.
#include "query/composite_view.h"

#include <gtest/gtest.h>

#include "core/composite_eca.h"
#include "test_util.h"

namespace wvm {
namespace {

// Base relations: r1(W,X), r2(X,Y), r3(X,Z). Branch A = pi_W(r1 |x| r2),
// branch B = pi_W(r1 |x| r3): both project a single int column.
struct CompositeFixture {
  Catalog initial;
  ViewDefinitionPtr branch_a;
  ViewDefinitionPtr branch_b;

  static CompositeFixture Make() {
    CompositeFixture f;
    Schema s1 = Schema::Ints({"W", "X"});
    Schema s2 = Schema::Ints({"X", "Y"});
    Schema s3 = Schema::Ints({"X", "Z"});
    EXPECT_TRUE(f.initial
                    .DefineWithData({"r1", s1},
                                    Relation::FromTuples(
                                        s1, {Tuple::Ints({1, 2}),
                                             Tuple::Ints({4, 2}),
                                             Tuple::Ints({7, 3})}))
                    .ok());
    EXPECT_TRUE(f.initial
                    .DefineWithData({"r2", s2},
                                    Relation::FromTuples(
                                        s2, {Tuple::Ints({2, 0})}))
                    .ok());
    EXPECT_TRUE(f.initial
                    .DefineWithData({"r3", s3},
                                    Relation::FromTuples(
                                        s3, {Tuple::Ints({3, 0})}))
                    .ok());
    f.branch_a = *ViewDefinition::NaturalJoin(
        "A", {{"r1", s1}, {"r2", s2}}, {"W"});
    f.branch_b = *ViewDefinition::NaturalJoin(
        "B", {{"r1", s1}, {"r3", s3}}, {"W"});
    return f;
  }

  CompositeViewPtr Union() const {
    return *CompositeView::Create("U", {{branch_a, +1}, {branch_b, +1}});
  }
  CompositeViewPtr Difference() const {
    return *CompositeView::Create("D", {{branch_a, +1}, {branch_b, -1}});
  }
};

TEST(CompositeViewTest, CreateValidatesBranches) {
  CompositeFixture f = CompositeFixture::Make();
  EXPECT_FALSE(CompositeView::Create("E", {}).ok());
  EXPECT_FALSE(
      CompositeView::Create("E", {{f.branch_a, +2}}).ok());  // bad sign
  // Arity mismatch: a two-column branch against a one-column one.
  ViewDefinitionPtr wide = *ViewDefinition::NaturalJoin(
      "wide",
      {{"r1", Schema::Ints({"W", "X"})}, {"r2", Schema::Ints({"X", "Y"})}},
      {"W", "Y"});
  EXPECT_EQ(CompositeView::Create("E", {{f.branch_a, 1}, {wide, 1}})
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(CompositeViewTest, UnionAllEvaluation) {
  CompositeFixture f = CompositeFixture::Make();
  Result<Relation> v = f.Union()->Evaluate(f.initial);
  ASSERT_TRUE(v.ok());
  // Branch A yields ([1],[4]); branch B yields ([7]); UNION ALL keeps all.
  EXPECT_EQ(*v, Relation::FromTuples(f.branch_a->output_schema(),
                                     {Tuple::Ints({1}), Tuple::Ints({4}),
                                      Tuple::Ints({7})}));
}

TEST(CompositeViewTest, UnionAllKeepsDuplicatesAcrossBranches) {
  CompositeFixture f = CompositeFixture::Make();
  Catalog state = f.initial.Clone();
  // Make W=1 derivable from both branches: add r3 tuple with X=2.
  ASSERT_TRUE(state.Apply(Update::Insert("r3", Tuple::Ints({2, 5}))).ok());
  Result<Relation> v = f.Union()->Evaluate(state);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->CountOf(Tuple::Ints({1})), 2);  // one per branch
}

TEST(CompositeViewTest, DifferenceEvaluation) {
  CompositeFixture f = CompositeFixture::Make();
  Catalog state = f.initial.Clone();
  ASSERT_TRUE(state.Apply(Update::Insert("r3", Tuple::Ints({2, 5}))).ok());
  Result<Relation> v = f.Difference()->Evaluate(state);
  ASSERT_TRUE(v.ok());
  // A = ([1],[4]); B = ([1],[4],[7]): difference = -[7] in Z-semantics.
  EXPECT_EQ(v->CountOf(Tuple::Ints({1})), 0);
  EXPECT_EQ(v->CountOf(Tuple::Ints({7})), -1);
}

TEST(CompositeViewTest, ReferencesChecksEveryBranch) {
  CompositeFixture f = CompositeFixture::Make();
  CompositeViewPtr u = f.Union();
  EXPECT_TRUE(u->References("r1"));
  EXPECT_TRUE(u->References("r3"));
  EXPECT_FALSE(u->References("r9"));
}

TEST(CompositeViewTest, ToStringShowsSigns) {
  CompositeFixture f = CompositeFixture::Make();
  std::string s = f.Difference()->ToString();
  EXPECT_NE(s.find(" - ["), std::string::npos);
}

// --- CompositeEca end-to-end ---------------------------------------------

std::unique_ptr<Simulation> MakeCompositeSim(const CompositeFixture& f,
                                             CompositeViewPtr composite) {
  SimulationOptions options;
  options.view_evaluator = [composite](const Catalog& catalog) {
    return composite->Evaluate(catalog);
  };
  auto maintainer = std::make_unique<CompositeEca>(composite);
  Result<std::unique_ptr<Simulation>> sim = Simulation::Create(
      f.initial, composite->branches().front().view, std::move(maintainer),
      options);
  EXPECT_TRUE(sim.ok()) << sim.status();
  return std::move(*sim);
}

TEST(CompositeEcaTest, MaintainsUnionUnderConcurrency) {
  CompositeFixture f = CompositeFixture::Make();
  CompositeViewPtr u = f.Union();
  std::unique_ptr<Simulation> sim = MakeCompositeSim(f, u);
  sim->SetUpdateScript({Update::Insert("r2", Tuple::Ints({3, 9})),
                        Update::Insert("r1", Tuple::Ints({9, 3})),
                        Update::Delete("r3", Tuple::Ints({3, 0}))});
  WorstCasePolicy policy;
  ASSERT_TRUE(RunToQuiescence(sim.get(), &policy).ok());
  Result<Relation> expected = u->Evaluate(sim->source_catalog());
  ASSERT_TRUE(expected.ok());
  EXPECT_EQ(sim->warehouse_view(), *expected);
  ConsistencyReport report = CheckConsistency(sim->state_log());
  EXPECT_TRUE(report.strongly_consistent) << report.ToString();
}

TEST(CompositeEcaTest, SharedRelationUpdateFansOutToBothBranches) {
  // r1 appears in both branches: one update must generate one query whose
  // terms cover both substitutions.
  CompositeFixture f = CompositeFixture::Make();
  std::unique_ptr<Simulation> sim = MakeCompositeSim(f, f.Union());
  sim->SetUpdateScript({Update::Insert("r1", Tuple::Ints({9, 2}))});
  BestCasePolicy policy;
  ASSERT_TRUE(RunToQuiescence(sim.get(), &policy).ok());
  EXPECT_EQ(sim->meter().query_messages(), 1);
  EXPECT_EQ(sim->meter().query_terms(), 2);  // one term per branch
  EXPECT_EQ(sim->warehouse_view().CountOf(Tuple::Ints({9})), 1);
}

TEST(CompositeEcaTest, MaintainsDifferenceUnderConcurrency) {
  CompositeFixture f = CompositeFixture::Make();
  CompositeViewPtr d = f.Difference();
  std::unique_ptr<Simulation> sim = MakeCompositeSim(f, d);
  sim->SetUpdateScript({Update::Insert("r3", Tuple::Ints({2, 5})),
                        Update::Insert("r1", Tuple::Ints({9, 3})),
                        Update::Insert("r2", Tuple::Ints({3, 1}))});
  WorstCasePolicy policy;
  ASSERT_TRUE(RunToQuiescence(sim.get(), &policy).ok());
  Result<Relation> expected = d->Evaluate(sim->source_catalog());
  ASSERT_TRUE(expected.ok());
  EXPECT_EQ(sim->warehouse_view(), *expected);
}

class CompositeEcaSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CompositeEcaSweep, StronglyConsistentOnRandomInterleavings) {
  CompositeFixture f = CompositeFixture::Make();
  CompositeViewPtr u = f.Union();
  std::unique_ptr<Simulation> sim = MakeCompositeSim(f, u);

  // Random mixed stream over the three relations, kept valid via a shadow.
  Random rng(GetParam());
  Catalog shadow = f.initial.Clone();
  std::vector<Update> updates;
  const char* names[] = {"r1", "r2", "r3"};
  for (int i = 0; i < 8; ++i) {
    const char* rel = names[rng.Uniform(3)];
    const Relation* live = shadow.Get(rel).value();
    Update u2;
    if (!live->IsEmpty() && rng.Bernoulli(1, 3)) {
      auto it = live->entries().begin();
      std::advance(it, rng.Uniform(live->NumDistinct()));
      u2 = Update::Delete(rel, it->first);
    } else {
      u2 = Update::Insert(rel, Tuple::Ints({rng.UniformRange(0, 9),
                                            rng.UniformRange(0, 9)}));
    }
    ASSERT_TRUE(shadow.Apply(u2).ok());
    updates.push_back(std::move(u2));
  }
  sim->SetUpdateScript(updates);
  RandomPolicy policy(GetParam());
  ASSERT_TRUE(RunToQuiescence(sim.get(), &policy).ok());
  ConsistencyReport report = CheckConsistency(sim->state_log());
  EXPECT_TRUE(report.strongly_consistent) << report.ToString();
}

INSTANTIATE_TEST_SUITE_P(Seeds, CompositeEcaSweep,
                         ::testing::Range<uint64_t>(1, 21));

}  // namespace
}  // namespace wvm
