// Tests for the multi-view warehouse (Section 7: "ECA is simply applied to
// each view separately"), the deferred/periodic timing wrapper (Section 2),
// and modifications as atomic delete+insert batches (Section 4.1).
#include <gtest/gtest.h>

#include "core/deferred.h"
#include "core/eca.h"
#include "core/eca_batch.h"
#include "core/multi_view.h"
#include "query/compiled_plan.h"
#include "test_util.h"
#include "workload/generator.h"

namespace wvm {
namespace {

// Two views over the same three base relations: V1 = pi_W(r1|x|r2),
// V2 = pi_{Y,Z}(r2|x|r3).
struct TwoViewFixture {
  Catalog initial;
  ViewDefinitionPtr v1;
  ViewDefinitionPtr v2;

  static TwoViewFixture Make() {
    TwoViewFixture f;
    Schema s1 = Schema::Ints({"W", "X"});
    Schema s2 = Schema::Ints({"X", "Y"});
    Schema s3 = Schema::Ints({"Y", "Z"});
    EXPECT_TRUE(f.initial
                    .DefineWithData({"r1", s1},
                                    Relation::FromTuples(
                                        s1, {Tuple::Ints({1, 2})}))
                    .ok());
    EXPECT_TRUE(f.initial
                    .DefineWithData({"r2", s2},
                                    Relation::FromTuples(
                                        s2, {Tuple::Ints({2, 3})}))
                    .ok());
    EXPECT_TRUE(f.initial
                    .DefineWithData({"r3", s3},
                                    Relation::FromTuples(
                                        s3, {Tuple::Ints({3, 4})}))
                    .ok());
    f.v1 = *ViewDefinition::NaturalJoin("V1", {{"r1", s1}, {"r2", s2}},
                                        {"W"});
    f.v2 = *ViewDefinition::NaturalJoin("V2", {{"r2", s2}, {"r3", s3}},
                                        {"Y", "Z"});
    return f;
  }
};

std::unique_ptr<Simulation> MakeMultiSim(const TwoViewFixture& f,
                                         MultiViewWarehouse** out,
                                         bool dedup = false) {
  std::vector<std::unique_ptr<ViewMaintainer>> children;
  children.push_back(std::make_unique<Eca>(f.v1));
  children.push_back(std::make_unique<Eca>(f.v2));
  MultiViewOptions mv_options;
  mv_options.dedup = dedup;
  auto multi = std::make_unique<MultiViewWarehouse>(std::move(children),
                                                    mv_options);
  *out = multi.get();
  SimulationOptions options;
  Result<std::unique_ptr<Simulation>> sim =
      Simulation::Create(f.initial, f.v1, std::move(multi), options);
  EXPECT_TRUE(sim.ok()) << sim.status();
  return std::move(*sim);
}

TEST(MultiViewTest, BothViewsMaintainedThroughOneChannel) {
  TwoViewFixture f = TwoViewFixture::Make();
  MultiViewWarehouse* multi = nullptr;
  std::unique_ptr<Simulation> sim = MakeMultiSim(f, &multi);
  sim->SetUpdateScript({Update::Insert("r2", Tuple::Ints({2, 7})),
                        Update::Insert("r3", Tuple::Ints({7, 9})),
                        Update::Delete("r1", Tuple::Ints({1, 2}))});
  WorstCasePolicy policy;
  ASSERT_TRUE(RunToQuiescence(sim.get(), &policy).ok());
  ASSERT_TRUE(multi->IsQuiescent());

  Result<Relation> v1_expected = EvaluateView(f.v1, sim->source_catalog());
  Result<Relation> v2_expected = EvaluateView(f.v2, sim->source_catalog());
  ASSERT_TRUE(v1_expected.ok());
  ASSERT_TRUE(v2_expected.ok());
  EXPECT_EQ(multi->child(0).view_contents(), *v1_expected);
  EXPECT_EQ(multi->child(1).view_contents(), *v2_expected);
}

TEST(MultiViewTest, IrrelevantUpdatesOnlyReachInterestedViews) {
  TwoViewFixture f = TwoViewFixture::Make();
  MultiViewWarehouse* multi = nullptr;
  std::unique_ptr<Simulation> sim = MakeMultiSim(f, &multi);
  // r1 is only in V1; r3 only in V2; r2 in both.
  sim->SetUpdateScript({Update::Insert("r1", Tuple::Ints({5, 2})),
                        Update::Insert("r3", Tuple::Ints({3, 8})),
                        Update::Insert("r2", Tuple::Ints({2, 3}))});
  BestCasePolicy policy;
  ASSERT_TRUE(RunToQuiescence(sim.get(), &policy).ok());
  // r1 update: 1 query (V1); r3 update: 1 query (V2); r2 update: 2.
  EXPECT_EQ(sim->meter().query_messages(), 4);
}

TEST(MultiViewTest, AnswerRoutingSurvivesInterleavedQueries) {
  TwoViewFixture f = TwoViewFixture::Make();
  MultiViewWarehouse* multi = nullptr;
  std::unique_ptr<Simulation> sim = MakeMultiSim(f, &multi);
  // Updates to the shared relation r2 create queries from both children in
  // the same events; answers must return to their owners.
  sim->SetUpdateScript({Update::Insert("r2", Tuple::Ints({2, 3})),
                        Update::Insert("r2", Tuple::Ints({2, 9})),
                        Update::Delete("r2", Tuple::Ints({2, 3}))});
  RandomPolicy policy(77);
  ASSERT_TRUE(RunToQuiescence(sim.get(), &policy).ok());
  Result<Relation> v1_expected = EvaluateView(f.v1, sim->source_catalog());
  Result<Relation> v2_expected = EvaluateView(f.v2, sim->source_catalog());
  EXPECT_EQ(multi->child(0).view_contents(), *v1_expected);
  EXPECT_EQ(multi->child(1).view_contents(), *v2_expected);
}

class MultiViewSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MultiViewSweep, BothViewsConvergeUnderRandomInterleavings) {
  TwoViewFixture f = TwoViewFixture::Make();
  MultiViewWarehouse* multi = nullptr;
  std::unique_ptr<Simulation> sim = MakeMultiSim(f, &multi);
  Random rng(GetParam());
  Catalog shadow = f.initial.Clone();
  std::vector<Update> updates;
  const char* names[] = {"r1", "r2", "r3"};
  for (int i = 0; i < 8; ++i) {
    const char* rel = names[rng.Uniform(3)];
    const Relation* live = shadow.Get(rel).value();
    Update u;
    if (!live->IsEmpty() && rng.Bernoulli(1, 3)) {
      auto it = live->entries().begin();
      std::advance(it, rng.Uniform(live->NumDistinct()));
      u = Update::Delete(rel, it->first);
    } else {
      u = Update::Insert(rel, Tuple::Ints({rng.UniformRange(0, 6),
                                           rng.UniformRange(0, 6)}));
    }
    ASSERT_TRUE(shadow.Apply(u).ok());
    updates.push_back(std::move(u));
  }
  sim->SetUpdateScript(updates);
  RandomPolicy policy(GetParam() * 31);
  ASSERT_TRUE(RunToQuiescence(sim.get(), &policy).ok());
  EXPECT_EQ(multi->child(0).view_contents(),
            *EvaluateView(f.v1, sim->source_catalog()));
  EXPECT_EQ(multi->child(1).view_contents(),
            *EvaluateView(f.v2, sim->source_catalog()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, MultiViewSweep,
                         ::testing::Range<uint64_t>(1, 21));

// --- Shared maintenance (cross-view query dedup) ----------------------------

TEST(MultiViewDedupTest, SharedUpdateMergesQueriesIntoOneMessage) {
  // r2 is in both views, so one r2 update makes both children query. With
  // dedup on the two compensating queries ride ONE wire message (the two
  // views are structurally different, so their terms merge without
  // deduplicating); with dedup off, two messages as before.
  for (bool dedup : {false, true}) {
    TwoViewFixture f = TwoViewFixture::Make();
    MultiViewWarehouse* multi = nullptr;
    std::unique_ptr<Simulation> sim = MakeMultiSim(f, &multi, dedup);
    sim->SetUpdateScript({Update::Insert("r2", Tuple::Ints({2, 7}))});
    BestCasePolicy policy;
    ASSERT_TRUE(RunToQuiescence(sim.get(), &policy).ok());
    EXPECT_EQ(sim->meter().query_messages(), dedup ? 1 : 2);
    EXPECT_EQ(sim->meter().deduped_query_terms(), 0);
    EXPECT_TRUE(multi->IsQuiescent());
    EXPECT_EQ(multi->child(0).view_contents(),
              *EvaluateView(f.v1, sim->source_catalog()));
    EXPECT_EQ(multi->child(1).view_contents(),
              *EvaluateView(f.v2, sim->source_catalog()));
  }
}

TEST(MultiViewDedupTest, StructurallyIdenticalViewsShareOneTerm) {
  // Two children over separately constructed but structurally identical
  // view definitions: their compensating terms have equal signatures, so
  // the shared query carries the term ONCE and the saving is metered.
  TwoViewFixture f = TwoViewFixture::Make();
  Schema s1 = Schema::Ints({"W", "X"});
  Schema s2 = Schema::Ints({"X", "Y"});
  ViewDefinitionPtr v1_twin =
      *ViewDefinition::NaturalJoin("V1twin", {{"r1", s1}, {"r2", s2}}, {"W"});
  ASSERT_NE(v1_twin.get(), f.v1.get());

  std::vector<std::unique_ptr<ViewMaintainer>> children;
  children.push_back(std::make_unique<Eca>(f.v1));
  children.push_back(std::make_unique<Eca>(v1_twin));
  MultiViewOptions mv_options;
  mv_options.dedup = true;
  auto multi_owner = std::make_unique<MultiViewWarehouse>(std::move(children),
                                                          mv_options);
  MultiViewWarehouse* multi = multi_owner.get();
  Result<std::unique_ptr<Simulation>> sim = Simulation::Create(
      f.initial, f.v1, std::move(multi_owner), SimulationOptions());
  ASSERT_TRUE(sim.ok()) << sim.status();
  (*sim)->SetUpdateScript({Update::Insert("r1", Tuple::Ints({5, 2}))});
  BestCasePolicy policy;
  ASSERT_TRUE(RunToQuiescence(sim->get(), &policy).ok());
  // One message, one term on the wire, one term saved.
  EXPECT_EQ((*sim)->meter().query_messages(), 1);
  EXPECT_EQ((*sim)->meter().query_terms(), 1);
  EXPECT_EQ((*sim)->meter().deduped_query_terms(), 1);
  Result<Relation> expected = EvaluateView(f.v1, (*sim)->source_catalog());
  EXPECT_EQ(multi->child(0).view_contents(), *expected);
  EXPECT_EQ(multi->child(1).view_contents(), *expected);
}

// Dedup on vs off must be observationally identical to every child: same
// final contents, tuple for tuple, across random and adversarial
// interleavings — the fan-out rebuilds each child's private answer exactly.
class MultiViewDedupSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MultiViewDedupSweep, DedupMatchesIndependentBaseline) {
  const uint64_t seed = GetParam();
  std::vector<Update> updates;
  {
    Random rng(seed);
    Catalog shadow = TwoViewFixture::Make().initial.Clone();
    const char* names[] = {"r1", "r2", "r3"};
    for (int i = 0; i < 10; ++i) {
      const char* rel = names[rng.Uniform(3)];
      const Relation* live = shadow.Get(rel).value();
      Update u;
      if (!live->IsEmpty() && rng.Bernoulli(1, 3)) {
        auto it = live->entries().begin();
        std::advance(it, rng.Uniform(live->NumDistinct()));
        u = Update::Delete(rel, it->first);
      } else {
        u = Update::Insert(rel, Tuple::Ints({rng.UniformRange(0, 6),
                                             rng.UniformRange(0, 6)}));
      }
      ASSERT_TRUE(shadow.Apply(u).ok());
      updates.push_back(std::move(u));
    }
  }
  for (bool worst_case : {false, true}) {
    std::vector<Relation> baseline;
    int64_t baseline_messages = 0;
    for (bool dedup : {false, true}) {
      TwoViewFixture f = TwoViewFixture::Make();
      MultiViewWarehouse* multi = nullptr;
      std::unique_ptr<Simulation> sim = MakeMultiSim(f, &multi, dedup);
      sim->SetUpdateScript(updates);
      if (worst_case) {
        WorstCasePolicy policy;
        ASSERT_TRUE(RunToQuiescence(sim.get(), &policy).ok());
      } else {
        RandomPolicy policy(seed * 31);
        ASSERT_TRUE(RunToQuiescence(sim.get(), &policy).ok());
      }
      ASSERT_TRUE(multi->IsQuiescent());
      EXPECT_EQ(multi->child(0).view_contents(),
                *EvaluateView(f.v1, sim->source_catalog()));
      EXPECT_EQ(multi->child(1).view_contents(),
                *EvaluateView(f.v2, sim->source_catalog()));
      if (!dedup) {
        baseline = {multi->child(0).view_contents(),
                    multi->child(1).view_contents()};
        baseline_messages = sim->meter().query_messages();
      } else {
        EXPECT_EQ(multi->child(0).view_contents(), baseline[0]);
        EXPECT_EQ(multi->child(1).view_contents(), baseline[1]);
        EXPECT_LE(sim->meter().query_messages(), baseline_messages);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MultiViewDedupSweep,
                         ::testing::Range<uint64_t>(1, 16));

// --- Compiled-plan pre-warm at Initialize -----------------------------------

TEST(SharedPlanPrewarmTest, InitializeCompilesEveryChildMask) {
  // ViewDefinition::Create pre-warms the empty and single-bound masks; the
  // multi-view Initialize pre-warms the REST of each child view's masks, so
  // the maintenance loop (including batch inclusion-exclusion shapes) never
  // compiles on first touch.
  ScopedCompiledPlans plans(true);
  TwoViewFixture f = TwoViewFixture::Make();
  EXPECT_FALSE(f.v1->HasCompiledPlanFor(0b11));
  EXPECT_FALSE(f.v2->HasCompiledPlanFor(0b11));
  std::vector<std::unique_ptr<ViewMaintainer>> children;
  children.push_back(std::make_unique<Eca>(f.v1));
  children.push_back(std::make_unique<Eca>(f.v2));
  MultiViewWarehouse multi(std::move(children));
  ASSERT_TRUE(multi.Initialize(f.initial).ok());
  for (uint64_t mask = 0; mask < 4; ++mask) {
    EXPECT_TRUE(f.v1->HasCompiledPlanFor(mask)) << "v1 mask " << mask;
    EXPECT_TRUE(f.v2->HasCompiledPlanFor(mask)) << "v2 mask " << mask;
  }
}

// --- Deferred / periodic timing ---------------------------------------------

TEST(DeferredTest, PeriodicFlushEveryThreshold) {
  Random rng(3);
  Result<Workload> w = MakeExample6Workload({20, 2}, &rng);
  ASSERT_TRUE(w.ok());
  Result<std::vector<Update>> updates = MakeMixedUpdates(*w, 9, 0.3, &rng);
  ASSERT_TRUE(updates.ok());

  auto inner = std::make_unique<EcaBatch>(w->view);
  auto deferred = std::make_unique<Deferred>(std::move(inner),
                                             /*threshold=*/3);
  Result<std::unique_ptr<Simulation>> sim = Simulation::Create(
      w->initial, w->view, std::move(deferred), SimulationOptions());
  ASSERT_TRUE(sim.ok());
  (*sim)->SetUpdateScript(*updates);
  BestCasePolicy policy;
  ASSERT_TRUE(RunToQuiescence(sim->get(), &policy).ok());
  // 9 updates, flush every 3 -> 3 inclusion-exclusion queries.
  EXPECT_EQ((*sim)->meter().query_messages(), 3);
  Result<Relation> expected = (*sim)->SourceViewNow();
  EXPECT_EQ((*sim)->warehouse_view(), *expected);
  // Stale-but-valid between flushes: still consistent.
  ConsistencyReport report = CheckConsistency((*sim)->state_log());
  EXPECT_TRUE(report.strongly_consistent) << report.ToString();
}

TEST(DeferredTest, PureDeferredFlushesOnReaderDemand) {
  Random rng(4);
  Result<Workload> w = MakeExample6Workload({20, 2}, &rng);
  ASSERT_TRUE(w.ok());
  Result<std::vector<Update>> updates = MakeMixedUpdates(*w, 5, 0.3, &rng);
  ASSERT_TRUE(updates.ok());

  auto inner = std::make_unique<Eca>(w->view);
  auto deferred_owner = std::make_unique<Deferred>(std::move(inner),
                                                   /*threshold=*/0);
  Deferred* deferred = deferred_owner.get();
  Result<std::unique_ptr<Simulation>> sim = Simulation::Create(
      w->initial, w->view, std::move(deferred_owner), SimulationOptions());
  ASSERT_TRUE(sim.ok());
  (*sim)->SetUpdateScript(*updates);
  BestCasePolicy policy;
  ASSERT_TRUE(RunToQuiescence(sim->get(), &policy).ok());
  // Nothing flushed: no queries, stale view, 5 buffered updates.
  EXPECT_EQ((*sim)->meter().query_messages(), 0);
  EXPECT_EQ(deferred->buffered(), 5u);
  // A reader queries the warehouse view: flush, then drain.
  ASSERT_TRUE(deferred->Flush((*sim)->warehouse_context()).ok());
  ASSERT_TRUE(RunToQuiescence(sim->get(), &policy).ok());
  EXPECT_EQ(deferred->buffered(), 0u);
  Result<Relation> expected = (*sim)->SourceViewNow();
  EXPECT_EQ((*sim)->warehouse_view(), *expected);
}

// --- Modifications -----------------------------------------------------------

TEST(ModificationTest, ExpandsToDeletePlusInsert) {
  std::vector<Update> pair =
      ModifyAsDeleteInsert("r1", Tuple::Ints({1, 2}), Tuple::Ints({1, 9}));
  ASSERT_EQ(pair.size(), 2u);
  EXPECT_EQ(pair[0].kind, UpdateKind::kDelete);
  EXPECT_EQ(pair[0].tuple, Tuple::Ints({1, 2}));
  EXPECT_EQ(pair[1].kind, UpdateKind::kInsert);
  EXPECT_EQ(pair[1].tuple, Tuple::Ints({1, 9}));
}

TEST(ModificationTest, AtomicModifyBatchKeepsViewConsistent) {
  TwoViewFixture f = TwoViewFixture::Make();
  std::unique_ptr<Simulation> sim =
      MustMakeSim(f.initial, f.v1, Algorithm::kEca);
  // Modify r2's [2,3] to [2,8] atomically, then modify r1's [1,2] to [6,2].
  sim->SetUpdateScriptBatches({
      ModifyAsDeleteInsert("r2", Tuple::Ints({2, 3}), Tuple::Ints({2, 8})),
      ModifyAsDeleteInsert("r1", Tuple::Ints({1, 2}), Tuple::Ints({6, 2})),
  });
  RandomPolicy policy(5);
  ASSERT_TRUE(RunToQuiescence(sim.get(), &policy).ok());
  // Final view: the modified r1 tuple [6,2] joins the modified r2 [2,8].
  EXPECT_EQ(sim->warehouse_view(),
            Relation::FromTuples(f.v1->output_schema(), {Tuple::Ints({6})}));
  ConsistencyReport report = CheckConsistency(sim->state_log());
  EXPECT_TRUE(report.strongly_consistent) << report.ToString();
  // Atomicity: no recorded source state shows the half-modified relation
  // (the state after only the delete).
  for (const Relation& s : sim->state_log().source_view_states) {
    (void)s;  // states exist per batch, not per half-update
  }
  EXPECT_EQ(sim->state_log().source_view_states.size(), 3u);  // ss0 + 2
}

TEST(ModificationTest, EcaBatchHandlesSameRelationModifyPair) {
  // IncExc over {delete(t), insert(t')} on the same relation: the pair
  // term vanishes, leaving exactly -V<t> + V<t'>.
  TwoViewFixture f = TwoViewFixture::Make();
  SimulationOptions options;
  std::unique_ptr<Simulation> sim =
      MustMakeSim(f.initial, f.v1, Algorithm::kEcaBatch, options);
  sim->SetUpdateScriptBatches({
      ModifyAsDeleteInsert("r2", Tuple::Ints({2, 3}), Tuple::Ints({2, 8})),
  });
  BestCasePolicy policy;
  ASSERT_TRUE(RunToQuiescence(sim.get(), &policy).ok());
  EXPECT_EQ(sim->meter().query_messages(), 1);
  EXPECT_EQ(sim->meter().query_terms(), 2);  // delete term + insert term
  Result<Relation> expected = sim->SourceViewNow();
  EXPECT_EQ(sim->warehouse_view(), *expected);
}

}  // namespace
}  // namespace wvm
