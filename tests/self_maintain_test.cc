// The self-maintenance decision procedure and runtime: static decisions
// from declared key/FK constraints, constraint-proven empty deltas, pruned
// complements with journal-backed resolution, remote fallback on cold
// rows, differential equivalence with ECA, and crash recovery.
#include "core/self_maintain.h"

#include <gtest/gtest.h>

#include "consistency/checker.h"
#include "core/factory.h"
#include "test_util.h"
#include "workload/generator.h"

namespace wvm {
namespace {

Workload MustMakeFkStar(FkStarConfig config = FkStarConfig(),
                        uint64_t seed = 5) {
  Random rng(seed);
  Result<Workload> w = MakeFkStarWorkload(config, &rng);
  EXPECT_TRUE(w.ok()) << w.status();
  return std::move(*w);
}

const SelfMaintainer& AsSelfMaintainer(const Simulation& sim) {
  const auto* m = dynamic_cast<const SelfMaintainer*>(&sim.maintainer());
  EXPECT_NE(m, nullptr);
  return *m;
}

// --- Static decision procedure ---------------------------------------------

TEST(SelfMaintainAnalysisTest, FkStarDecisionTable) {
  Workload w = MustMakeFkStar();
  Result<SelfMaintenanceAnalysis> a =
      SelfMaintenanceAnalysis::Analyze(*w.view, SelfMaintainOptions());
  ASSERT_TRUE(a.ok()) << a.status();
  // orders (fact): provable via the pruned dimension complements.
  EXPECT_EQ(a->DecisionFor(0, UpdateKind::kInsert),
            LocalDecision::kLocalComplement);
  EXPECT_EQ(a->DecisionFor(0, UpdateKind::kDelete),
            LocalDecision::kLocalComplement);
  // parts, suppliers (FK-protected dimensions): deltas provably empty.
  for (size_t dim : {size_t{1}, size_t{2}}) {
    EXPECT_EQ(a->DecisionFor(dim, UpdateKind::kInsert),
              LocalDecision::kLocalEmpty);
    EXPECT_EQ(a->DecisionFor(dim, UpdateKind::kDelete),
              LocalDecision::kLocalEmpty);
  }
  // The fact relation needs no complement; the dimensions get pruned ones.
  using Mode = SelfMaintenanceAnalysis::Complement::Mode;
  EXPECT_EQ(a->complement(0).mode, Mode::kNone);
  EXPECT_EQ(a->complement(1).mode, Mode::kPruned);
  EXPECT_EQ(a->complement(2).mode, Mode::kPruned);
  ASSERT_EQ(a->resolution_edges().size(), 2u);
}

TEST(SelfMaintainAnalysisTest, ComplementsOffLeavesConstraintProofsOnly) {
  Workload w = MustMakeFkStar();
  SelfMaintainOptions options;
  options.complements = false;
  Result<SelfMaintenanceAnalysis> a =
      SelfMaintenanceAnalysis::Analyze(*w.view, options);
  ASSERT_TRUE(a.ok()) << a.status();
  // Fact inserts must go remote; fact deletes keep the view-side key
  // delete (every declared key survives the projection).
  EXPECT_EQ(a->DecisionFor(0, UpdateKind::kInsert), LocalDecision::kRemote);
  EXPECT_EQ(a->DecisionFor(0, UpdateKind::kDelete),
            LocalDecision::kLocalKeyDelete);
  // The pure constraint proofs survive without any auxiliary state.
  EXPECT_EQ(a->DecisionFor(1, UpdateKind::kInsert),
            LocalDecision::kLocalEmpty);
  EXPECT_EQ(a->DecisionFor(2, UpdateKind::kDelete),
            LocalDecision::kLocalEmpty);
  using Mode = SelfMaintenanceAnalysis::Complement::Mode;
  EXPECT_EQ(a->complement(1).mode, Mode::kNone);
}

TEST(SelfMaintainAnalysisTest, UnconstrainedChainGetsFullComplements) {
  // Example 6 declares no keys or FKs: nothing is provably empty and
  // nothing can be pruned, but full complements still cover every term.
  Random rng(2);
  Result<Workload> w = MakeExample6Workload({/*c=*/8, /*j=*/2}, &rng);
  ASSERT_TRUE(w.ok());
  Result<SelfMaintenanceAnalysis> a =
      SelfMaintenanceAnalysis::Analyze(*w->view, SelfMaintainOptions());
  ASSERT_TRUE(a.ok()) << a.status();
  using Mode = SelfMaintenanceAnalysis::Complement::Mode;
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(a->DecisionFor(i, UpdateKind::kInsert),
              LocalDecision::kLocalComplement);
    EXPECT_EQ(a->DecisionFor(i, UpdateKind::kDelete),
              LocalDecision::kLocalComplement);
    EXPECT_EQ(a->complement(i).mode, Mode::kFull);
  }
  EXPECT_TRUE(a->resolution_edges().empty());

  SelfMaintainOptions off;
  off.complements = false;
  Result<SelfMaintenanceAnalysis> degraded =
      SelfMaintenanceAnalysis::Analyze(*w->view, off);
  ASSERT_TRUE(degraded.ok());
  // No declared keys -> not even key deletes; everything ships.
  EXPECT_EQ(degraded->DecisionFor(0, UpdateKind::kDelete),
            LocalDecision::kRemote);
}

TEST(SelfMaintainAnalysisTest, SingleRelationViewIsLocalBound) {
  Schema schema({{"A", ValueType::kInt}, {"B", ValueType::kInt}});
  Result<ViewDefinitionPtr> view = ViewDefinition::Create(
      "V", {{"r", schema}}, {"A"},
      Predicate::Compare(Operand::Attr("A"), CompareOp::kGt,
                         Operand::ConstInt(3)));
  ASSERT_TRUE(view.ok()) << view.status();
  Result<SelfMaintenanceAnalysis> a =
      SelfMaintenanceAnalysis::Analyze(**view, SelfMaintainOptions());
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a->DecisionFor(0, UpdateKind::kInsert),
            LocalDecision::kLocalBound);
  EXPECT_EQ(a->DecisionFor(0, UpdateKind::kDelete),
            LocalDecision::kLocalBound);
}

// --- Runtime: local answering ----------------------------------------------

TEST(SelfMaintainerTest, FkStarAnswersEveryUpdateWithZeroSourceQueries) {
  FkStarConfig config;
  config.cold_parts = 0;  // every part referenced at init
  Workload w = MustMakeFkStar(config);
  Random rng(11);
  Result<std::vector<Update>> updates = MakeFkStarUpdates(w, 40, &rng);
  ASSERT_TRUE(updates.ok()) << updates.status();

  std::unique_ptr<Simulation> sim = MustMakeSim(
      w.initial, w.view, MaintainerSpec{Algorithm::kSelfMaintain});
  sim->SetUpdateScript(*updates);
  RandomPolicy policy(11);
  ASSERT_TRUE(RunToQuiescence(sim.get(), &policy).ok());

  EXPECT_EQ(sim->meter().query_messages(), 0);
  Result<Relation> expected = sim->SourceViewNow();
  ASSERT_TRUE(expected.ok());
  EXPECT_EQ(sim->warehouse_view(), *expected);
  ConsistencyReport report = CheckConsistency(sim->state_log());
  EXPECT_TRUE(report.strongly_consistent) << report.ToString();

  const SelfMaintainer& m = AsSelfMaintainer(*sim);
  EXPECT_EQ(m.remote_updates(), 0);
  EXPECT_EQ(m.local_updates(), 40);
  EXPECT_GT(m.constraint_empty_updates(), 0);  // dimension churn occurred
  EXPECT_GT(m.journal_records(), 0);
}

TEST(SelfMaintainerTest, DimensionUpdatesAreProvenEmptyWithoutEvaluation) {
  Workload w = MustMakeFkStar();
  std::unique_ptr<Simulation> sim = MustMakeSim(
      w.initial, w.view, MaintainerSpec{Algorithm::kSelfMaintain});
  // A fresh supplier, a fresh part referencing it, and a delete of a
  // never-referenced cold part: all FK-protected, all provably empty.
  const int64_t cold = FkStarConfig().parts - 1;
  sim->SetUpdateScript({
      Update::Insert("suppliers", Tuple::Ints({500, 1})),
      Update::Insert("parts", Tuple::Ints({600, 500})),
      Update::Delete("parts", Tuple::Ints({cold, cold % 10})),
  });
  RandomPolicy policy(3);
  ASSERT_TRUE(RunToQuiescence(sim.get(), &policy).ok());
  EXPECT_EQ(sim->meter().query_messages(), 0);
  const SelfMaintainer& m = AsSelfMaintainer(*sim);
  EXPECT_EQ(m.constraint_empty_updates(), 3);
  Result<Relation> expected = sim->SourceViewNow();
  ASSERT_TRUE(expected.ok());
  EXPECT_EQ(sim->warehouse_view(), *expected);
}

TEST(SelfMaintainerTest, JournalBackfillResolvesFreshDimensionRows) {
  Workload w = MustMakeFkStar();
  std::unique_ptr<Simulation> sim = MustMakeSim(
      w.initial, w.view, MaintainerSpec{Algorithm::kSelfMaintain});
  // The fresh part is lazily absent from the pruned complement; the order
  // referencing it must be proven through the update-history journal.
  sim->SetUpdateScript({
      Update::Insert("parts", Tuple::Ints({600, 0})),
      Update::Insert("orders", Tuple::Ints({900, 600})),
  });
  RandomPolicy policy(3);
  ASSERT_TRUE(RunToQuiescence(sim.get(), &policy).ok());
  EXPECT_EQ(sim->meter().query_messages(), 0);
  const SelfMaintainer& m = AsSelfMaintainer(*sim);
  EXPECT_GE(m.journal_backfills(), 1);
  Result<Relation> expected = sim->SourceViewNow();
  ASSERT_TRUE(expected.ok());
  EXPECT_EQ(sim->warehouse_view(), *expected);
}

TEST(SelfMaintainerTest, ColdRowFallsBackToTheSource) {
  // A part that existed before the warehouse attached, is unreferenced at
  // init, and was never updated: its liveness is unprovable locally.
  FkStarConfig config;
  config.cold_parts = 2;
  Workload w = MustMakeFkStar(config);
  const int64_t cold_part = config.parts - 1;
  std::unique_ptr<Simulation> sim = MustMakeSim(
      w.initial, w.view, MaintainerSpec{Algorithm::kSelfMaintain});
  sim->SetUpdateScript(
      {Update::Insert("orders", Tuple::Ints({900, cold_part}))});
  RandomPolicy policy(3);
  ASSERT_TRUE(RunToQuiescence(sim.get(), &policy).ok());
  EXPECT_EQ(sim->meter().query_messages(), 1);
  const SelfMaintainer& m = AsSelfMaintainer(*sim);
  EXPECT_EQ(m.fallback_updates(), 1);
  EXPECT_EQ(m.remote_updates(), 1);
  Result<Relation> expected = sim->SourceViewNow();
  ASSERT_TRUE(expected.ok());
  EXPECT_EQ(sim->warehouse_view(), *expected);
}

TEST(SelfMaintainerTest, PrunedComplementsHoldOnlyDimensionRows) {
  FkStarConfig config;
  Workload w = MustMakeFkStar(config);
  SelfMaintainer m(w.view);
  ASSERT_TRUE(m.Initialize(w.initial).ok());
  // No orders complement; parts complement misses the cold rows.
  EXPECT_EQ(m.aux_rows(),
            (config.parts - config.cold_parts) + config.suppliers);
  EXPECT_TRUE(m.aux_live());
}

TEST(SelfMaintainerTest, PrewarmsPairwiseCompensationMasks) {
  Workload w = MustMakeFkStar();
  SelfMaintainer m(w.view);
  ASSERT_TRUE(m.Initialize(w.initial).ok());
  // orders (position 0) is the local position: its compensation terms bind
  // {orders} x {pending update's position}.
  EXPECT_TRUE(w.view->HasCompiledPlanFor((1u << 0) | (1u << 1)));
  EXPECT_TRUE(w.view->HasCompiledPlanFor((1u << 0) | (1u << 2)));
}

TEST(SelfMaintainerTest, LoseVolatileStateDegradesToConstraintProofs) {
  Workload w = MustMakeFkStar();
  SelfMaintainer m(w.view);
  ASSERT_TRUE(m.Initialize(w.initial).ok());
  m.LoseVolatileState();
  EXPECT_FALSE(m.aux_live());
  EXPECT_EQ(m.aux_rows(), 0);
  EXPECT_EQ(m.journal_records(), 0);
}

TEST(SelfMaintainerTest, ComplementsOffKeepsKeyDeletesLocal) {
  Workload w = MustMakeFkStar();
  MaintainerSpec spec;
  spec.algorithm = Algorithm::kSelfMaintain;
  spec.self_maintain.complements = false;
  std::unique_ptr<Simulation> sim = MustMakeSim(w.initial, w.view, spec);
  // Delete of a live order (key delete, local) then an order insert
  // (remote: no complements to evaluate against).
  sim->SetUpdateScript({
      Update::Delete("orders", Tuple::Ints({0, 0})),
      Update::Insert("orders", Tuple::Ints({900, 1})),
  });
  RandomPolicy policy(3);
  ASSERT_TRUE(RunToQuiescence(sim.get(), &policy).ok());
  EXPECT_EQ(sim->meter().query_messages(), 1);
  const SelfMaintainer& m = AsSelfMaintainer(*sim);
  EXPECT_EQ(m.key_delete_updates(), 1);
  EXPECT_EQ(m.remote_updates(), 1);
  EXPECT_EQ(m.fallback_updates(), 0);  // remote was the static decision
  Result<Relation> expected = sim->SourceViewNow();
  ASSERT_TRUE(expected.ok());
  EXPECT_EQ(sim->warehouse_view(), *expected);
}

// --- Differential equivalence with ECA -------------------------------------

TEST(SelfMaintainerTest, FinalStatesMatchEcaAcrossSeeds) {
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    FkStarConfig config;
    config.orders = 30;
    config.parts = 10;
    config.suppliers = 5;
    config.cold_parts = 2;
    Workload w = MustMakeFkStar(config, seed);
    Random rng(seed * 13 + 1);
    Result<std::vector<Update>> updates = MakeFkStarUpdates(w, 16, &rng);
    ASSERT_TRUE(updates.ok());

    Relation finals[2];
    int64_t queries[2] = {0, 0};
    const Algorithm algorithms[2] = {Algorithm::kEca,
                                     Algorithm::kSelfMaintain};
    for (int i = 0; i < 2; ++i) {
      std::unique_ptr<Simulation> sim =
          MustMakeSim(w.initial, w.view, MaintainerSpec{algorithms[i]});
      sim->SetUpdateScript(*updates);
      RandomPolicy policy(seed);
      ASSERT_TRUE(RunToQuiescence(sim.get(), &policy).ok());
      ConsistencyReport report = CheckConsistency(sim->state_log());
      EXPECT_TRUE(report.strongly_consistent)
          << AlgorithmName(algorithms[i]) << " seed " << seed << ": "
          << report.ToString();
      finals[i] = sim->warehouse_view();
      queries[i] = sim->meter().query_messages();
      Result<Relation> expected = sim->SourceViewNow();
      ASSERT_TRUE(expected.ok());
      EXPECT_EQ(finals[i], *expected)
          << AlgorithmName(algorithms[i]) << " seed " << seed;
    }
    EXPECT_EQ(finals[0], finals[1]) << "seed " << seed;
    EXPECT_LT(queries[1], queries[0]) << "seed " << seed;
  }
}

TEST(SelfMaintainerTest, FullComplementsSelfMaintainUnconstrainedViews) {
  // Without any declared constraints the maintainer degenerates to
  // store-copies-style full complements: still zero source queries.
  Random rng(4);
  Result<Workload> w = MakeExample6Workload({/*c=*/10, /*j=*/2}, &rng);
  ASSERT_TRUE(w.ok());
  Result<std::vector<Update>> updates = MakeMixedUpdates(*w, 12, 0.35, &rng);
  ASSERT_TRUE(updates.ok());
  std::unique_ptr<Simulation> sim = MustMakeSim(
      w->initial, w->view, MaintainerSpec{Algorithm::kSelfMaintain});
  sim->SetUpdateScript(*updates);
  RandomPolicy policy(4);
  ASSERT_TRUE(RunToQuiescence(sim.get(), &policy).ok());
  EXPECT_EQ(sim->meter().query_messages(), 0);
  Result<Relation> expected = sim->SourceViewNow();
  ASSERT_TRUE(expected.ok());
  EXPECT_EQ(sim->warehouse_view(), *expected);
  ConsistencyReport report = CheckConsistency(sim->state_log());
  EXPECT_TRUE(report.strongly_consistent) << report.ToString();
}

// --- Crash recovery ---------------------------------------------------------

TEST(SelfMaintainerTest, RecoversAuxiliaryStateAcrossWarehouseCrashes) {
  Workload w = MustMakeFkStar();
  Random rng(9);
  Result<std::vector<Update>> updates = MakeFkStarUpdates(w, 12, &rng);
  ASSERT_TRUE(updates.ok());

  SimulationOptions options;
  options.fault.enabled = true;
  options.fault.reliable = true;
  options.fault.seed = 9;
  options.fault.retransmit_timeout_ticks = 6;
  options.recovery.enabled = true;
  options.recovery.checkpoint_every = 5;

  std::unique_ptr<Simulation> sim = MustMakeSim(
      w.initial, w.view, MaintainerSpec{Algorithm::kSelfMaintain}, options);
  sim->SetUpdateScript(*updates);
  RandomPolicy policy(9);
  int actions = 0;
  while (true) {
    SimAction action = policy.Next(*sim);
    if (action == SimAction::kNone) {
      break;
    }
    ASSERT_TRUE(sim->Step(action).ok());
    if (++actions == 7 || actions == 19) {
      ASSERT_TRUE(sim->CrashWarehouse().ok());
      ASSERT_TRUE(sim->RestartWarehouse().ok());
    }
  }
  const SelfMaintainer& m = AsSelfMaintainer(*sim);
  EXPECT_TRUE(m.aux_live());  // recovered restarts restored the complements
  Result<Relation> expected = sim->SourceViewNow();
  ASSERT_TRUE(expected.ok());
  EXPECT_EQ(sim->warehouse_view(), *expected);
  ConsistencyReport report = CheckConsistency(sim->state_log());
  EXPECT_TRUE(report.strongly_consistent) << report.ToString();
}

}  // namespace
}  // namespace wvm
