// Seeded sweep of the WAL crash-fuzz harness (src/recovery/wal_fuzz.h):
// each seed forks a child that appends with group commit and is killed
// mid-write(2), then verifies recovery upholds the durability contract —
// no synced-but-lost record, no LSN hole, byte-identical payloads, and a
// log that keeps appending. The harness returns Internal naming the seed
// on any violation, so a red run here is directly replayable.
#include "recovery/wal_fuzz.h"

#include <filesystem>
#include <string>

#include <gtest/gtest.h>

namespace wvm {
namespace {

std::string FuzzDir(uint64_t seed) {
  return (std::filesystem::temp_directory_path() /
          ("wvm-wal-fuzz-test-" + std::to_string(seed)))
      .string();
}

class WalFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(WalFuzzTest, SeededKillPointUpholdsDurabilityContract) {
  WalFuzzOptions options;
  options.seed = GetParam();
  options.dir = FuzzDir(options.seed);
  std::error_code ec;
  std::filesystem::remove_all(options.dir, ec);  // stale state from old runs
  Result<WalFuzzReport> report = RunWalCrashFuzz(options);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->seed, options.seed);
  // Everything the child synced must have been recovered.
  EXPECT_GE(report->recovered_end, report->synced_floor);
  if (!report->killed) {
    // Clean-exit seeds still check the plain reopen path end to end.
    EXPECT_EQ(report->recovered_end, 300u);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WalFuzzTest,
                         ::testing::Range<uint64_t>(1, 25));

TEST(WalFuzzTest, SweepActuallyKillsAndTearsSomewhere) {
  // The sweep above proves per-seed properties; this proves the harness is
  // not vacuous — across a seed range, some children die mid-write and at
  // least one kill lands inside a record (a real torn tail).
  int killed = 0;
  int64_t torn = 0;
  for (uint64_t seed = 100; seed < 116; ++seed) {
    WalFuzzOptions options;
    options.seed = seed;
    options.dir = FuzzDir(seed);
    std::error_code ec;
    std::filesystem::remove_all(options.dir, ec);
    Result<WalFuzzReport> report = RunWalCrashFuzz(options);
    ASSERT_TRUE(report.ok()) << report.status();
    killed += report->killed ? 1 : 0;
    torn += report->torn_tail_truncations;
  }
  EXPECT_GT(killed, 0) << "no seed ever died: the kill hook is dead code";
  EXPECT_GT(torn, 0) << "no kill ever tore a record: the torn-tail "
                        "recovery path went unexercised";
}

TEST(WalFuzzTest, RejectsMissingDirectory) {
  WalFuzzOptions options;
  options.dir = "";
  EXPECT_EQ(RunWalCrashFuzz(options).status().code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace wvm
