#include "query/view_def.h"

#include <gtest/gtest.h>

namespace wvm {
namespace {

std::vector<BaseRelationDef> ChainDefs() {
  return {{"r1", Schema::Ints({"W", "X"})},
          {"r2", Schema::Ints({"X", "Y"})},
          {"r3", Schema::Ints({"Y", "Z"})}};
}

TEST(ViewDefinitionTest, NaturalJoinBuildsEqualityConditions) {
  Result<ViewDefinitionPtr> v =
      ViewDefinition::NaturalJoin("V", ChainDefs(), {"W", "Z"});
  ASSERT_TRUE(v.ok()) << v.status();
  // Shared X and Y each produce one equi-edge.
  EXPECT_EQ((*v)->equi_edges().size(), 2u);
  EXPECT_EQ((*v)->combined_schema().size(), 6u);
  EXPECT_EQ((*v)->output_schema().size(), 2u);
}

TEST(ViewDefinitionTest, SharedNamesAreQualified) {
  Result<ViewDefinitionPtr> v =
      ViewDefinition::NaturalJoin("V", ChainDefs(), {"W", "Z"});
  ASSERT_TRUE(v.ok());
  const Schema& combined = (*v)->combined_schema();
  EXPECT_TRUE(combined.IndexOf("r1.X").has_value());
  EXPECT_TRUE(combined.IndexOf("r2.X").has_value());
  EXPECT_TRUE(combined.IndexOf("W").has_value());  // unique: stays bare
  EXPECT_FALSE(combined.IndexOf("X").has_value());
}

TEST(ViewDefinitionTest, ProjectingSharedNameResolvesToFirstOccurrence) {
  Result<ViewDefinitionPtr> v =
      ViewDefinition::NaturalJoin("V", ChainDefs(), {"X"});
  ASSERT_TRUE(v.ok()) << v.status();
  EXPECT_EQ((*v)->output_schema().attribute(0).name, "r1.X");
}

TEST(ViewDefinitionTest, RejectsDuplicateRelations) {
  std::vector<BaseRelationDef> defs = {{"r1", Schema::Ints({"W"})},
                                       {"r1", Schema::Ints({"X"})}};
  EXPECT_EQ(ViewDefinition::Create("V", defs, {"W"}, Predicate())
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(ViewDefinitionTest, RejectsEmptyRelationList) {
  EXPECT_EQ(
      ViewDefinition::Create("V", {}, {}, Predicate()).status().code(),
      StatusCode::kInvalidArgument);
}

TEST(ViewDefinitionTest, RejectsUnknownProjection) {
  EXPECT_EQ(ViewDefinition::NaturalJoin("V", ChainDefs(), {"Q"})
                .status()
                .code(),
            StatusCode::kNotFound);
}

TEST(ViewDefinitionTest, RejectsUnknownConditionAttribute) {
  EXPECT_EQ(ViewDefinition::NaturalJoin(
                "V", ChainDefs(), {"W"},
                Predicate::AttrCompare("Q", CompareOp::kEq, "W"))
                .status()
                .code(),
            StatusCode::kNotFound);
}

TEST(ViewDefinitionTest, RelationIndexAndOffsets) {
  Result<ViewDefinitionPtr> v =
      ViewDefinition::NaturalJoin("V", ChainDefs(), {"W", "Z"});
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*(*v)->RelationIndex("r2"), 1u);
  EXPECT_EQ((*v)->RelationIndex("nope").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ((*v)->relation_offset(0), 0u);
  EXPECT_EQ((*v)->relation_offset(1), 2u);
  EXPECT_EQ((*v)->relation_offset(2), 4u);
}

std::vector<BaseRelationDef> KeyedDefs() {
  return {{"r1", Schema({{"W", ValueType::kInt, true},
                         {"X", ValueType::kInt, false}})},
          {"r2", Schema({{"X", ValueType::kInt, false},
                         {"Y", ValueType::kInt, true}})}};
}

TEST(ViewDefinitionTest, KeysProjectedWhenEveryDeclaredKeySurvives) {
  Result<ViewDefinitionPtr> v =
      ViewDefinition::NaturalJoin("V", KeyedDefs(), {"W", "Y"});
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE((*v)->KeysProjected());
}

TEST(ViewDefinitionTest, MissingKeyInProjectionDisablesKeys) {
  Result<ViewDefinitionPtr> v =
      ViewDefinition::NaturalJoin("V", KeyedDefs(), {"W"});
  ASSERT_TRUE(v.ok());
  EXPECT_FALSE((*v)->KeysProjected());
}

TEST(ViewDefinitionTest, NoDeclaredKeysDisablesKeys) {
  Result<ViewDefinitionPtr> v =
      ViewDefinition::NaturalJoin("V", ChainDefs(), {"W", "Z"});
  ASSERT_TRUE(v.ok());
  EXPECT_FALSE((*v)->KeysProjected());
}

TEST(ViewDefinitionTest, KeyConstraintsMapToOutputColumns) {
  Result<ViewDefinitionPtr> v =
      ViewDefinition::NaturalJoin("V", KeyedDefs(), {"W", "Y"});
  ASSERT_TRUE(v.ok());
  Update u = Update::Delete("r1", Tuple::Ints({1, 2}));
  auto constraints = (*v)->KeyConstraintsFor(u);
  ASSERT_TRUE(constraints.ok()) << constraints.status();
  ASSERT_EQ(constraints->size(), 1u);
  EXPECT_EQ((*constraints)[0].first, 0u);  // W is output column 0
  EXPECT_EQ((*constraints)[0].second, Value(int64_t{1}));
}

TEST(ViewDefinitionTest, KeyConstraintsRejectArityMismatch) {
  Result<ViewDefinitionPtr> v =
      ViewDefinition::NaturalJoin("V", KeyedDefs(), {"W", "Y"});
  ASSERT_TRUE(v.ok());
  Update u = Update::Delete("r1", Tuple::Ints({1}));
  EXPECT_EQ((*v)->KeyConstraintsFor(u).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(ViewDefinitionTest, KeyConstraintsFailWithoutKeys) {
  Result<ViewDefinitionPtr> v =
      ViewDefinition::NaturalJoin("V", ChainDefs(), {"W", "Z"});
  ASSERT_TRUE(v.ok());
  Update u = Update::Delete("r1", Tuple::Ints({1, 2}));
  EXPECT_EQ((*v)->KeyConstraintsFor(u).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(ViewDefinitionTest, ExtraConditionIsConjoined) {
  Result<ViewDefinitionPtr> v = ViewDefinition::NaturalJoin(
      "V", ChainDefs(), {"W", "Z"},
      Predicate::AttrCompare("W", CompareOp::kGt, "Z"));
  ASSERT_TRUE(v.ok());
  // W > Z is not an equi-edge; the two natural-join equalities are.
  EXPECT_EQ((*v)->equi_edges().size(), 2u);
  EXPECT_NE((*v)->cond().ToString().find("W > Z"), std::string::npos);
}

TEST(ViewDefinitionTest, ToStringDescribesTheView) {
  Result<ViewDefinitionPtr> v =
      ViewDefinition::NaturalJoin("V", ChainDefs(), {"W"});
  ASSERT_TRUE(v.ok());
  EXPECT_NE((*v)->ToString().find("pi_{W}"), std::string::npos);
  EXPECT_NE((*v)->ToString().find("r1 x r2 x r3"), std::string::npos);
}

}  // namespace
}  // namespace wvm
