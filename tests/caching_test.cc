// Tests for the Section 6.3 "caching and multiple-term optimization"
// extensions: the paper expects both to improve ECA's I/O; these tests pin
// the mechanics and the direction of the improvement.
#include <gtest/gtest.h>

#include "analytic/cost_model.h"
#include "query/evaluator.h"
#include "source/source.h"
#include "test_util.h"
#include "workload/generator.h"

namespace wvm {
namespace {

TEST(ReadCacheTest, ChargesEachBlockOnce) {
  ReadCache cache;
  EXPECT_TRUE(cache.Charge("r1", 0));
  EXPECT_FALSE(cache.Charge("r1", 0));
  EXPECT_TRUE(cache.Charge("r1", 1));
  EXPECT_TRUE(cache.Charge("r2", 0));  // per-relation block ids
  EXPECT_EQ(cache.distinct_blocks(), 3u);
}

struct CachedFixture {
  Workload workload;
  Source source;

  static CachedFixture Make(PhysicalScenario scenario, bool cache,
                            bool optimize) {
    Random rng(42);
    Result<Workload> w = MakeExample6Workload({100, 4}, &rng);
    EXPECT_TRUE(w.ok());
    PhysicalConfig config;
    config.scenario = scenario;
    config.tuples_per_block = 20;
    config.cache_within_query = cache;
    config.optimize_terms = optimize;
    std::vector<IndexSpec> indexes =
        scenario == PhysicalScenario::kIndexedMemory
            ? w->scenario1_indexes
            : std::vector<IndexSpec>{};
    Result<Source> source = Source::Create(w->initial, config, indexes);
    EXPECT_TRUE(source.ok());
    return CachedFixture{std::move(*w), std::move(*source)};
  }
};

Query RepeatedTermQuery(const Workload& w) {
  // Q = T - T + T with T = V<insert(r1,[42,3])>: three structurally
  // identical terms (distinct tags, mixed coefficients).
  Term t = *Term::FromView(w.view).Substitute(
      Update::Insert("r1", Tuple::Ints({42, 3})));
  Term a = t;
  a.set_delta_update_id(1);
  Term b = t.Negated();
  b.set_delta_update_id(2);
  Term c = t;
  c.set_delta_update_id(3);
  return Query(1, 3, {a, b, c});
}

TEST(TermOptimizationTest, IdenticalTermsEvaluateOnce) {
  CachedFixture plain = CachedFixture::Make(
      PhysicalScenario::kIndexedMemory, false, false);
  CachedFixture optimized = CachedFixture::Make(
      PhysicalScenario::kIndexedMemory, false, true);

  Result<AnswerMessage> a1 =
      plain.source.EvaluateQuery(RepeatedTermQuery(plain.workload));
  Result<AnswerMessage> a2 =
      optimized.source.EvaluateQuery(RepeatedTermQuery(optimized.workload));
  ASSERT_TRUE(a1.ok());
  ASSERT_TRUE(a2.ok());
  // One plan (1+J = 5 reads) instead of three.
  EXPECT_EQ(plain.source.io_stats().page_reads, 3 * 5);
  EXPECT_EQ(optimized.source.io_stats().page_reads, 5);
}

TEST(TermOptimizationTest, AnswersAreIdenticalPerTerm) {
  CachedFixture plain = CachedFixture::Make(
      PhysicalScenario::kIndexedMemory, false, false);
  CachedFixture optimized = CachedFixture::Make(
      PhysicalScenario::kIndexedMemory, false, true);
  Result<AnswerMessage> a1 =
      plain.source.EvaluateQuery(RepeatedTermQuery(plain.workload));
  Result<AnswerMessage> a2 =
      optimized.source.EvaluateQuery(RepeatedTermQuery(optimized.workload));
  ASSERT_TRUE(a1.ok());
  ASSERT_TRUE(a2.ok());
  ASSERT_EQ(a1->per_term.size(), a2->per_term.size());
  for (size_t i = 0; i < a1->per_term.size(); ++i) {
    EXPECT_EQ(a1->per_term[i], a2->per_term[i]) << "term " << i;
    EXPECT_EQ(a1->term_delta_tags[i], a2->term_delta_tags[i]);
  }
  // Negated term really is the negation.
  EXPECT_EQ(a2->per_term[1], a2->per_term[0].Negated());
}

TEST(CachingTest, RecomputationInScenario2CollapsesToOnePass) {
  // Without caching the blocked nested loop rescans the inner relations
  // (I + I^2 + I^3 = 155); with a per-query cache every block is charged
  // once: 3I = 15.
  CachedFixture plain = CachedFixture::Make(
      PhysicalScenario::kNestedLoopLimited, false, false);
  CachedFixture cached = CachedFixture::Make(
      PhysicalScenario::kNestedLoopLimited, true, false);
  Query recompute(1, 1, {Term::FromView(plain.workload.view)});

  ASSERT_TRUE(plain.source.EvaluateQuery(recompute).ok());
  ASSERT_TRUE(cached.source.EvaluateQuery(recompute).ok());
  analytic::Params p;
  EXPECT_EQ(plain.source.io_stats().page_reads,
            static_cast<int64_t>(analytic::IoRecomputeS2Operational(p)));
  EXPECT_EQ(cached.source.io_stats().page_reads, 3 * 5);
}

TEST(CachingTest, NonClusteredProbesChargePerBlockWithCache) {
  // V<insert(r3, t)> probes r2 via the non-clustered Y index (J=4 reads
  // uncached); with a cache, matches sharing a block are charged once, and
  // the subsequent r1 probes may also hit cached blocks.
  CachedFixture plain = CachedFixture::Make(
      PhysicalScenario::kIndexedMemory, false, false);
  CachedFixture cached = CachedFixture::Make(
      PhysicalScenario::kIndexedMemory, true, false);
  Term t = *Term::FromView(plain.workload.view)
                .Substitute(Update::Insert("r3", Tuple::Ints({7, 5})));
  Query q(1, 1, {t});
  ASSERT_TRUE(plain.source.EvaluateQuery(q).ok());
  ASSERT_TRUE(cached.source.EvaluateQuery(q).ok());
  EXPECT_EQ(plain.source.io_stats().page_reads, 8);  // 2J
  EXPECT_LE(cached.source.io_stats().page_reads, 8);
  EXPECT_GT(cached.source.io_stats().page_reads, 0);
}

TEST(CachingTest, NonClusteredReProbeOfCachedBlocksIsFree) {
  // Two terms probing r2's non-clustered Y index at the same value within
  // one query: uncached, each probe charges per matching tuple (J reads);
  // with the per-query cache the second term's probes land entirely on
  // blocks the first already read, so only the fresh r1 probes (if any)
  // charge. The charging delta isolates the re-probe.
  CachedFixture plain = CachedFixture::Make(
      PhysicalScenario::kIndexedMemory, false, false);
  CachedFixture cached = CachedFixture::Make(
      PhysicalScenario::kIndexedMemory, true, false);
  Term t1 = *Term::FromView(plain.workload.view)
                 .Substitute(Update::Insert("r3", Tuple::Ints({7, 5})));
  Term t2 = t1;
  t2.set_delta_update_id(2);
  t2.set_coefficient(-1);  // distinct term, identical access pattern
  Query q(1, 2, {t1, t2});
  ASSERT_TRUE(plain.source.EvaluateQuery(q).ok());
  ASSERT_TRUE(cached.source.EvaluateQuery(q).ok());
  // Uncached: both terms charge the full 2J = 8 reads.
  EXPECT_EQ(plain.source.io_stats().page_reads, 16);
  // Cached: the second term re-probes only cached blocks — zero new reads.
  const int64_t first_term_cost = 8;
  EXPECT_LE(cached.source.io_stats().page_reads, first_term_cost);
}

TEST(CachingTest, BlockCacheAndTermOptimizationCompose) {
  // A query mixing repeated shapes (optimize_terms collapses them) with
  // distinct shapes touching overlapping blocks (cache_within_query
  // collapses those): with both on, reads are no more than under either
  // alone, and answers agree per term with the plain evaluation.
  auto make_query = [](const Workload& w) {
    Term a = *Term::FromView(w.view).Substitute(
        Update::Insert("r1", Tuple::Ints({42, 3})));
    Term b = a;
    b.set_delta_update_id(2);
    Term c = *Term::FromView(w.view).Substitute(
        Update::Insert("r3", Tuple::Ints({7, 5})));
    c.set_delta_update_id(3);
    return Query(1, 3, {a, b, c});
  };
  auto run = [&](bool cache, bool optimize) {
    CachedFixture f = CachedFixture::Make(PhysicalScenario::kIndexedMemory,
                                          cache, optimize);
    Result<AnswerMessage> answer =
        f.source.EvaluateQuery(make_query(f.workload));
    EXPECT_TRUE(answer.ok());
    return std::pair<AnswerMessage, int64_t>(
        *std::move(answer), f.source.io_stats().page_reads);
  };
  auto [plain, io_plain] = run(false, false);
  auto [cached, io_cached] = run(true, false);
  auto [optimized, io_optimized] = run(false, true);
  auto [both, io_both] = run(true, true);
  EXPECT_LE(io_both, io_cached);
  EXPECT_LE(io_both, io_optimized);
  EXPECT_LT(io_both, io_plain);
  ASSERT_EQ(both.per_term.size(), plain.per_term.size());
  for (size_t i = 0; i < plain.per_term.size(); ++i) {
    EXPECT_EQ(both.per_term[i], plain.per_term[i]) << "term " << i;
    EXPECT_EQ(optimized.per_term[i], plain.per_term[i]) << "term " << i;
    EXPECT_EQ(cached.per_term[i], plain.per_term[i]) << "term " << i;
  }
}

TEST(TermOptimizationTest, MixedSignShapesEvaluateOnce) {
  // V<insert t> and V<delete t> differ only in the bound sign, which the
  // shape signature folds out: with optimize_terms on the pair costs one
  // evaluation, and the delete's answer is the insert's negation.
  CachedFixture optimized = CachedFixture::Make(
      PhysicalScenario::kIndexedMemory, false, true);
  const Tuple t = Tuple::Ints({42, 3});
  Term plus = *Term::FromView(optimized.workload.view)
                   .Substitute(Update::Insert("r1", t));
  Term minus = *Term::FromView(optimized.workload.view)
                    .Substitute(Update::Delete("r1", t));
  minus.set_delta_update_id(2);
  Result<AnswerMessage> answer =
      optimized.source.EvaluateQuery(Query(1, 2, {plus, minus}));
  ASSERT_TRUE(answer.ok());
  EXPECT_EQ(optimized.source.io_stats().page_reads, 5);  // one plan, not two
  ASSERT_EQ(answer->per_term.size(), 2u);
  EXPECT_EQ(answer->per_term[1], answer->per_term[0].Negated());
}

TEST(CachingTest, AnswersUnaffectedByCharging) {
  // Caching and term optimization change accounting only, never results.
  Random rng(9);
  Result<Workload> w = MakeExample6Workload({40, 4}, &rng);
  ASSERT_TRUE(w.ok());
  Result<std::vector<Update>> updates = MakeMixedUpdates(*w, 8, 0.3, &rng);
  ASSERT_TRUE(updates.ok());

  auto run = [&](bool cache, bool optimize) {
    SimulationOptions options;
    options.physical.cache_within_query = cache;
    options.physical.optimize_terms = optimize;
    options.indexes = w->scenario1_indexes;
    std::unique_ptr<Simulation> sim =
        MustMakeSim(w->initial, w->view, Algorithm::kEca, options);
    sim->SetUpdateScript(*updates);
    WorstCasePolicy policy;
    EXPECT_TRUE(RunToQuiescence(sim.get(), &policy).ok());
    return std::pair<Relation, int64_t>(sim->warehouse_view(),
                                        sim->io_stats().page_reads);
  };
  auto [view_plain, io_plain] = run(false, false);
  auto [view_both, io_both] = run(true, true);
  EXPECT_EQ(view_plain, view_both);
  EXPECT_LT(io_both, io_plain);  // the paper's expected improvement
}

TEST(CachingTest, LcaStillCompleteWithOptimizedTerms) {
  // LCA depends on per-term answers; the optimization must preserve them.
  Random rng(10);
  Result<Workload> w = MakeExample6Workload({20, 2}, &rng);
  ASSERT_TRUE(w.ok());
  Result<std::vector<Update>> updates = MakeMixedUpdates(*w, 8, 0.3, &rng);
  ASSERT_TRUE(updates.ok());
  SimulationOptions options;
  options.physical.optimize_terms = true;
  options.physical.cache_within_query = true;
  std::unique_ptr<Simulation> sim =
      MustMakeSim(w->initial, w->view, Algorithm::kLca, options);
  sim->SetUpdateScript(*updates);
  WorstCasePolicy policy;
  ASSERT_TRUE(RunToQuiescence(sim.get(), &policy).ok());
  ConsistencyReport report = CheckConsistency(sim->state_log());
  EXPECT_TRUE(report.complete) << report.ToString();
}

}  // namespace
}  // namespace wvm
