// Tests for the Z-relation substrate: values, tuples, schemas, and the
// signed-bag algebra of Section 4.1.
#include "relational/relation.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "relational/algebra.h"
#include "relational/schema.h"
#include "relational/tuple.h"
#include "relational/value.h"

namespace wvm {
namespace {

// --- Value ------------------------------------------------------------------

TEST(ValueTest, TypesAndAccessors) {
  EXPECT_EQ(Value(int64_t{3}).type(), ValueType::kInt);
  EXPECT_EQ(Value(2.5).type(), ValueType::kDouble);
  EXPECT_EQ(Value("hi").type(), ValueType::kString);
  EXPECT_EQ(Value(int64_t{3}).AsInt(), 3);
  EXPECT_EQ(Value(2.5).AsDouble(), 2.5);
  EXPECT_EQ(Value("hi").AsString(), "hi");
}

TEST(ValueTest, OrderingWithinType) {
  EXPECT_LT(Value(int64_t{1}), Value(int64_t{2}));
  EXPECT_LT(Value("a"), Value("b"));
  EXPECT_FALSE(Value(int64_t{2}) < Value(int64_t{1}));
}

TEST(ValueTest, EqualityAndHashAgree) {
  EXPECT_EQ(Value(int64_t{7}), Value(int64_t{7}));
  EXPECT_NE(Value(int64_t{7}), Value(int64_t{8}));
  EXPECT_EQ(Value(int64_t{7}).Hash(), Value(int64_t{7}).Hash());
  EXPECT_EQ(Value("x").Hash(), Value("x").Hash());
}

TEST(ValueTest, ByteWidths) {
  EXPECT_EQ(Value(int64_t{1}).ByteWidth(), 4);
  EXPECT_EQ(Value(1.0).ByteWidth(), 8);
  EXPECT_EQ(Value("abc").ByteWidth(), 3);
}

TEST(ValueTest, Printing) {
  EXPECT_EQ(Value(int64_t{5}).ToString(), "5");
  EXPECT_EQ(Value("s").ToString(), "\"s\"");
}

// --- Tuple ------------------------------------------------------------------

TEST(TupleTest, IntsFactoryAndAccess) {
  Tuple t = Tuple::Ints({1, 2, 3});
  EXPECT_EQ(t.size(), 3u);
  EXPECT_EQ(t.value(1).AsInt(), 2);
}

TEST(TupleTest, ProjectReordersAndRepeats) {
  Tuple t = Tuple::Ints({10, 20, 30});
  Tuple p = t.Project({2, 0, 2});
  EXPECT_EQ(p, Tuple::Ints({30, 10, 30}));
}

TEST(TupleTest, ConcatAppends) {
  EXPECT_EQ(Tuple::Ints({1}).Concat(Tuple::Ints({2, 3})),
            Tuple::Ints({1, 2, 3}));
}

TEST(TupleTest, PaperStylePrinting) {
  EXPECT_EQ(Tuple::Ints({1, 2}).ToString(), "[1,2]");
  EXPECT_EQ(Tuple().ToString(), "[]");
}

TEST(TupleTest, HashConsistentWithEquality) {
  EXPECT_EQ(Tuple::Ints({1, 2}).Hash(), Tuple::Ints({1, 2}).Hash());
  EXPECT_EQ(Tuple::Ints({1, 2}), Tuple::Ints({1, 2}));
  EXPECT_NE(Tuple::Ints({1, 2}), Tuple::Ints({2, 1}));
}

// --- Schema -----------------------------------------------------------------

TEST(SchemaTest, IndexOfFindsAttributes) {
  Schema s = Schema::Ints({"W", "X"});
  EXPECT_EQ(s.IndexOf("X"), 1u);
  EXPECT_FALSE(s.IndexOf("Z").has_value());
}

TEST(SchemaTest, IndicesOfErrorsOnMissing) {
  Schema s = Schema::Ints({"W", "X"});
  EXPECT_TRUE(s.IndicesOf({"X", "W"}).ok());
  EXPECT_EQ(s.IndicesOf({"X", "Q"}).status().code(), StatusCode::kNotFound);
}

TEST(SchemaTest, ConcatRejectsDuplicates) {
  Schema a = Schema::Ints({"W", "X"});
  Schema b = Schema::Ints({"X", "Y"});
  EXPECT_EQ(a.Concat(b).status().code(), StatusCode::kInvalidArgument);
  Schema c = Schema::Ints({"Y", "Z"});
  ASSERT_TRUE(a.Concat(c).ok());
  EXPECT_EQ(a.Concat(c)->size(), 4u);
}

TEST(SchemaTest, KeyAttributesTracked) {
  Schema s({{"W", ValueType::kInt, true}, {"X", ValueType::kInt, false}});
  EXPECT_EQ(s.KeyAttributeNames(), std::vector<std::string>{"W"});
}

TEST(SchemaTest, ByteWidthSumsFixedWidths) {
  Schema s({{"a", ValueType::kInt, false}, {"b", ValueType::kDouble, false}});
  EXPECT_EQ(s.ByteWidth(), 12);
}

// --- Relation: Z-semantics ---------------------------------------------------

Schema OneCol() { return Schema::Ints({"a"}); }

TEST(RelationTest, InsertAccumulatesMultiplicity) {
  Relation r(OneCol());
  r.Insert(Tuple::Ints({1}));
  r.Insert(Tuple::Ints({1}));
  EXPECT_EQ(r.CountOf(Tuple::Ints({1})), 2);
  EXPECT_EQ(r.NumDistinct(), 1u);
  EXPECT_EQ(r.TotalPositive(), 2);
}

TEST(RelationTest, ZeroMultiplicityEntriesVanish) {
  Relation r(OneCol());
  r.Insert(Tuple::Ints({1}), 2);
  r.Insert(Tuple::Ints({1}), -2);
  EXPECT_TRUE(r.IsEmpty());
  EXPECT_EQ(r.CountOf(Tuple::Ints({1})), 0);
}

TEST(RelationTest, NegativeMultiplicityRepresentsDeletedTuples) {
  Relation r(OneCol());
  r.Insert(Tuple::Ints({1}), -1);
  EXPECT_TRUE(r.HasNegative());
  EXPECT_EQ(r.TotalAbsolute(), 1);
  EXPECT_EQ(r.TotalPositive(), 0);
}

TEST(RelationTest, AddIsPointwiseCountAddition) {
  // The paper's r1 + r2 = (pos U pos) - (neg U neg).
  Relation a(OneCol());
  a.Insert(Tuple::Ints({1}), 2);
  a.Insert(Tuple::Ints({2}), -1);
  Relation b(OneCol());
  b.Insert(Tuple::Ints({1}), -1);
  b.Insert(Tuple::Ints({3}), 1);
  Relation sum = a + b;
  EXPECT_EQ(sum.CountOf(Tuple::Ints({1})), 1);
  EXPECT_EQ(sum.CountOf(Tuple::Ints({2})), -1);
  EXPECT_EQ(sum.CountOf(Tuple::Ints({3})), 1);
}

TEST(RelationTest, MinusIsPlusOfNegation) {
  Relation a(OneCol());
  a.Insert(Tuple::Ints({1}), 3);
  Relation b(OneCol());
  b.Insert(Tuple::Ints({1}), 1);
  EXPECT_EQ((a - b).CountOf(Tuple::Ints({1})), 2);
  EXPECT_EQ(a - b, a + b.Negated());
}

TEST(RelationTest, PositiveAndNegativeParts) {
  Relation r(OneCol());
  r.Insert(Tuple::Ints({1}), 2);
  r.Insert(Tuple::Ints({2}), -3);
  EXPECT_EQ(r.Positive().CountOf(Tuple::Ints({1})), 2);
  EXPECT_EQ(r.Positive().CountOf(Tuple::Ints({2})), 0);
  EXPECT_EQ(r.NegativePart().CountOf(Tuple::Ints({2})), 3);
}

TEST(RelationTest, EqualityIgnoresInsertionOrder) {
  Relation a = Relation::FromTuples(OneCol(),
                                    {Tuple::Ints({1}), Tuple::Ints({2})});
  Relation b = Relation::FromTuples(OneCol(),
                                    {Tuple::Ints({2}), Tuple::Ints({1})});
  EXPECT_EQ(a, b);
  b.Insert(Tuple::Ints({2}));
  EXPECT_NE(a, b);  // multiplicities matter (duplicate retention)
}

TEST(RelationTest, ByteSizeChargesAbsoluteMultiplicity) {
  Relation r(Schema::Ints({"a", "b"}));
  r.Insert(Tuple::Ints({1, 2}), 2);
  r.Insert(Tuple::Ints({3, 4}), -1);
  EXPECT_EQ(r.ByteSize(), 3 * 8);  // 3 tuples x 2 int columns x 4 bytes
}

TEST(RelationTest, PaperStylePrintingExpandsDuplicates) {
  Relation r(OneCol());
  r.Insert(Tuple::Ints({4}), 2);
  r.Insert(Tuple::Ints({1}), 1);
  EXPECT_EQ(r.ToString(), "([1], [4], [4])");
}

TEST(RelationTest, PrintingShowsMinusSigns) {
  Relation r(OneCol());
  r.Insert(Tuple::Ints({4}), -1);
  EXPECT_EQ(r.ToString(), "(-[4])");
}

// Group/ring properties of the signed algebra, exercised over random data
// (Lemma B.2 and the ECA proof rely on these).
class SignedAlgebraProperty : public ::testing::TestWithParam<uint64_t> {};

Relation RandomRelation(Random* rng, int max_tuples = 8) {
  Relation r(OneCol());
  const int n = 1 + static_cast<int>(rng->Uniform(max_tuples));
  for (int i = 0; i < n; ++i) {
    r.Insert(Tuple::Ints({static_cast<int64_t>(rng->Uniform(5))}),
             rng->UniformRange(-3, 3));
  }
  return r;
}

TEST_P(SignedAlgebraProperty, AdditionCommutesAndAssociates) {
  Random rng(GetParam());
  Relation a = RandomRelation(&rng);
  Relation b = RandomRelation(&rng);
  Relation c = RandomRelation(&rng);
  EXPECT_EQ(a + b, b + a);
  EXPECT_EQ((a + b) + c, a + (b + c));
}

TEST_P(SignedAlgebraProperty, NegationIsAdditiveInverse) {
  Random rng(GetParam());
  Relation a = RandomRelation(&rng);
  EXPECT_TRUE((a + a.Negated()).IsEmpty());
}

TEST_P(SignedAlgebraProperty, CrossProductDistributesOverAddition) {
  // The paper states x is distributive over + and - (Section 4.1); this is
  // what makes term-wise compensation sound.
  Random rng(GetParam());
  Relation a = RandomRelation(&rng);
  Relation b = RandomRelation(&rng);
  Relation c(Schema::Ints({"b"}));
  c.Insert(Tuple::Ints({static_cast<int64_t>(rng.Uniform(3))}),
           rng.UniformRange(-2, 2));
  Relation lhs = *CrossProduct(a + b, c);
  Relation rhs = *CrossProduct(a, c) + *CrossProduct(b, c);
  EXPECT_EQ(lhs, rhs);
}

TEST_P(SignedAlgebraProperty, SignProductTable) {
  // (+)x(+)=+, (+)x(-)=-, (-)x(-)=+ — multiplicity products.
  Random rng(GetParam());
  // Draw nonzero multiplicities of both signs.
  int64_t ca = rng.UniformRange(1, 4) * (rng.Bernoulli(1, 2) ? 1 : -1);
  int64_t cb = rng.UniformRange(1, 4) * (rng.Bernoulli(1, 2) ? 1 : -1);
  Relation a(OneCol());
  a.Insert(Tuple::Ints({1}), ca);
  Relation b(Schema::Ints({"b"}));
  b.Insert(Tuple::Ints({2}), cb);
  Relation prod = *CrossProduct(a, b);
  EXPECT_EQ(prod.CountOf(Tuple::Ints({1, 2})), ca * cb);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SignedAlgebraProperty,
                         ::testing::Range<uint64_t>(1, 33));

}  // namespace
}  // namespace wvm
