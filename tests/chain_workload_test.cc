// Tests for the n-relation chain generalization: generated parameters,
// and algorithm correctness on longer chains than the paper's three.
#include <gtest/gtest.h>

#include <map>

#include "query/evaluator.h"
#include "test_util.h"
#include "workload/generator.h"

namespace wvm {
namespace {

TEST(ChainWorkloadTest, RejectsDegenerateChains) {
  Random rng(1);
  EXPECT_FALSE(MakeChainWorkload({1, 10, 2}, &rng).ok());
  EXPECT_FALSE(MakeChainWorkload({3, 0, 2}, &rng).ok());
}

TEST(ChainWorkloadTest, SchemasFormAChain) {
  Random rng(2);
  Result<Workload> w = MakeChainWorkload({5, 40, 4}, &rng);
  ASSERT_TRUE(w.ok());
  ASSERT_EQ(w->defs.size(), 5u);
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(w->defs[i].schema.attribute(0).name,
              "c" + std::to_string(i));
    EXPECT_EQ(w->defs[i].schema.attribute(1).name,
              "c" + std::to_string(i + 1));
  }
  // View joins on the 4 shared attributes.
  EXPECT_EQ(w->view->equi_edges().size(), 4u);
  EXPECT_EQ(w->view->output_schema().size(), 2u);
}

TEST(ChainWorkloadTest, JoinFactorsHoldOnEveryLink) {
  Random rng(3);
  Result<Workload> w = MakeChainWorkload({4, 60, 3}, &rng);
  ASSERT_TRUE(w.ok());
  // Every join attribute value occurs exactly J=3 times on each side.
  for (int i = 1; i <= 4; ++i) {
    const Relation* r = w->initial.Get("r" + std::to_string(i)).value();
    for (int side = 0; side <= 1; ++side) {
      // c0 and c4 are the uniform chain ends, not join attributes.
      if ((i == 1 && side == 0) || (i == 4 && side == 1)) {
        continue;
      }
      std::map<int64_t, int64_t> hist;
      for (const auto& [t, c] : r->entries()) {
        hist[t.value(side).AsInt()] += c;
      }
      for (const auto& [value, count] : hist) {
        EXPECT_EQ(count, 3) << "r" << i << " side " << side << " value "
                            << value;
      }
    }
  }
}

TEST(ChainWorkloadTest, ThreeRelationChainMatchesExample6Shape) {
  Random rng(4);
  Result<Workload> chain = MakeChainWorkload({3, 100, 4}, &rng);
  ASSERT_TRUE(chain.ok());
  Result<Relation> v = EvaluateView(chain->view, chain->initial);
  ASSERT_TRUE(v.ok());
  // |V| ~ sigma * C * J^2 = 800.
  EXPECT_GT(v->TotalPositive(), 500);
  EXPECT_LT(v->TotalPositive(), 1100);
}

TEST(ChainWorkloadTest, IndexInventoryCoversBothProbeDirections) {
  Random rng(5);
  Result<Workload> w = MakeChainWorkload({4, 40, 2}, &rng);
  ASSERT_TRUE(w.ok());
  // r1: clustered c1; r2,r3: clustered left + non-clustered right;
  // r4: clustered left only.
  EXPECT_EQ(w->scenario1_indexes.size(), 1u + 2u + 2u + 1u);
}

class ChainSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ChainSweep, EcaStronglyConsistentOnLongChains) {
  for (int n : {4, 5}) {
    Random rng(GetParam());
    Result<Workload> w = MakeChainWorkload({n, 20, 2}, &rng);
    ASSERT_TRUE(w.ok());
    Result<std::vector<Update>> updates = MakeMixedUpdates(*w, 8, 0.3, &rng);
    ASSERT_TRUE(updates.ok());
    ConsistencyReport r =
        RunRandomized(w->initial, w->view, Algorithm::kEca, *updates,
                      GetParam() * 3 + n);
    EXPECT_TRUE(r.strongly_consistent) << "n=" << n << ": " << r.ToString();
  }
}

TEST_P(ChainSweep, LcaCompleteOnLongChains) {
  Random rng(GetParam() + 500);
  Result<Workload> w = MakeChainWorkload({4, 20, 2}, &rng);
  ASSERT_TRUE(w.ok());
  Result<std::vector<Update>> updates = MakeMixedUpdates(*w, 8, 0.3, &rng);
  ASSERT_TRUE(updates.ok());
  ConsistencyReport r = RunRandomized(w->initial, w->view, Algorithm::kLca,
                                      *updates, GetParam() * 11);
  EXPECT_TRUE(r.complete) << r.ToString();
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChainSweep,
                         ::testing::Range<uint64_t>(1, 13));

TEST(ChainWorkloadTest, PhysicalAnswersMatchLogicalOnLongChains) {
  Random rng(6);
  Result<Workload> w = MakeChainWorkload({5, 30, 3}, &rng);
  ASSERT_TRUE(w.ok());
  PhysicalConfig config;
  config.tuples_per_block = 8;
  Result<Source> source =
      Source::Create(w->initial, config, w->scenario1_indexes);
  ASSERT_TRUE(source.ok()) << source.status();

  Term bound = *Term::FromView(w->view).Substitute(
      Update::Insert("r3", Tuple::Ints({2, 4})));
  Query q(1, 1, {Term::FromView(w->view), bound});
  Result<AnswerMessage> physical = source->EvaluateQuery(q);
  ASSERT_TRUE(physical.ok()) << physical.status();
  Result<Relation> logical = EvaluateQuery(q, w->initial);
  ASSERT_TRUE(logical.ok());
  EXPECT_EQ(physical->Sum(), *logical);
}

}  // namespace
}  // namespace wvm
