// Micro-benchmarks of the core data structures: the signed-relation
// algebra and the join machinery every algorithm sits on. Not a paper
// figure — engineering telemetry for the substrate (throughput per
// operation at realistic sizes).
#include <benchmark/benchmark.h>

#include "common/random.h"
#include "query/compiled_plan.h"
#include "query/evaluator.h"
#include "relational/algebra.h"
#include "workload/generator.h"

namespace wvm::bench {
namespace {

Relation RandomRelation(int64_t rows, int64_t domain, uint64_t seed) {
  Random rng(seed);
  Relation r(Schema::Ints({"a", "b"}));
  for (int64_t i = 0; i < rows; ++i) {
    r.Insert(Tuple::Ints({rng.UniformRange(0, domain - 1),
                          rng.UniformRange(0, domain - 1)}));
  }
  return r;
}

void BM_RelationInsert(benchmark::State& state) {
  Random rng(1);
  const int64_t n = state.range(0);
  for (auto _ : state) {
    Relation r(Schema::Ints({"a", "b"}));
    for (int64_t i = 0; i < n; ++i) {
      r.Insert(Tuple::Ints({i % 97, i}));
    }
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_RelationInsert)->Arg(1000)->Arg(10000);

void BM_RelationAdd(benchmark::State& state) {
  Relation a = RandomRelation(state.range(0), 64, 1);
  Relation b = RandomRelation(state.range(0), 64, 2);
  for (auto _ : state) {
    Relation sum = a + b;
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RelationAdd)->Arg(1000)->Arg(10000);

void BM_NaturalJoin(benchmark::State& state) {
  // r1(W,X) |x| r2(X,Y), join factor ~rows/domain.
  Random rng(3);
  const int64_t rows = state.range(0);
  const int64_t domain = rows / 4;
  Relation r1(Schema::Ints({"W", "X"}));
  Relation r2(Schema::Ints({"X", "Y"}));
  for (int64_t i = 0; i < rows; ++i) {
    r1.Insert(Tuple::Ints({i, rng.UniformRange(0, domain - 1)}));
    r2.Insert(Tuple::Ints({rng.UniformRange(0, domain - 1), i}));
  }
  for (auto _ : state) {
    Result<Relation> joined = NaturalJoin(r1, r2);
    benchmark::DoNotOptimize(joined);
  }
  state.SetItemsProcessed(state.iterations() * rows);
}
BENCHMARK(BM_NaturalJoin)->Arg(1000)->Arg(5000);

void BM_ViewEvaluationChain(benchmark::State& state) {
  Random rng(4);
  Result<Workload> w = MakeExample6Workload(
      {/*cardinality=*/state.range(0), /*join_factor=*/4}, &rng);
  if (!w.ok()) {
    state.SkipWithError(w.status().ToString().c_str());
    return;
  }
  for (auto _ : state) {
    Result<Relation> v = EvaluateView(w->view, w->initial);
    benchmark::DoNotOptimize(v);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ViewEvaluationChain)->Arg(100)->Arg(1000)->Arg(5000);

void BM_SubstitutedTermEvaluation(benchmark::State& state) {
  Random rng(5);
  Result<Workload> w = MakeExample6Workload({state.range(0), 4}, &rng);
  if (!w.ok()) {
    state.SkipWithError(w.status().ToString().c_str());
    return;
  }
  Term t = *Term::FromView(w->view).Substitute(
      Update::Insert("r1", Tuple::Ints({7, 3})));
  for (auto _ : state) {
    Result<Relation> r = EvaluateTerm(t, w->initial);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_SubstitutedTermEvaluation)->Arg(1000)->Arg(10000);

// A/B twins of the two hot-loop benchmarks above with the compiled-plan
// fast path disabled, so one binary run reports both sides of the
// compiled-vs-interpreted comparison (BENCH_dataplane.json keeps the
// original names for the default — compiled — path).
void BM_ViewEvaluationChainInterpreted(benchmark::State& state) {
  ScopedCompiledPlans scoped(false);
  Random rng(4);
  Result<Workload> w = MakeExample6Workload(
      {/*cardinality=*/state.range(0), /*join_factor=*/4}, &rng);
  if (!w.ok()) {
    state.SkipWithError(w.status().ToString().c_str());
    return;
  }
  for (auto _ : state) {
    Result<Relation> v = EvaluateView(w->view, w->initial);
    benchmark::DoNotOptimize(v);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ViewEvaluationChainInterpreted)->Arg(100)->Arg(1000)->Arg(5000);

void BM_SubstitutedTermEvaluationInterpreted(benchmark::State& state) {
  ScopedCompiledPlans scoped(false);
  Random rng(5);
  Result<Workload> w = MakeExample6Workload({state.range(0), 4}, &rng);
  if (!w.ok()) {
    state.SkipWithError(w.status().ToString().c_str());
    return;
  }
  Term t = *Term::FromView(w->view).Substitute(
      Update::Insert("r1", Tuple::Ints({7, 3})));
  for (auto _ : state) {
    Result<Relation> r = EvaluateTerm(t, w->initial);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_SubstitutedTermEvaluationInterpreted)->Arg(1000)->Arg(10000);

// One-time compilation cost per (view, bound-mask) shape — the price paid
// at view registration, amortized over every later delta evaluation.
void BM_CompiledPlanCompile(benchmark::State& state) {
  Random rng(6);
  Result<Workload> w = MakeExample6Workload({100, 4}, &rng);
  if (!w.ok()) {
    state.SkipWithError(w.status().ToString().c_str());
    return;
  }
  uint64_t mask = 0;
  for (auto _ : state) {
    Result<CompiledDeltaPlan> plan =
        CompiledDeltaPlan::Compile(*w->view, mask % 4);
    benchmark::DoNotOptimize(plan);
    ++mask;
  }
}
BENCHMARK(BM_CompiledPlanCompile);

}  // namespace
}  // namespace wvm::bench

BENCHMARK_MAIN();
