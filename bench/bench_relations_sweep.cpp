// The paper's closing performance remark (Section 6.3): "our results are
// for a particular three-relation view. In spite of this, we believe that
// our results are indicative... when the view involves more relations, ECA
// should still generally outperform RV."
//
// This benchmark tests that extrapolation: chain views of n = 2..6
// relations, k = n round-robin inserts each, best-case interleaving,
// Scenario 1 source. ECA's cost stays per-update-local (a few probes per
// update) while RV's recomputation scans every relation and ships a view
// whose size grows with the chain's join product.
#include <benchmark/benchmark.h>

#include <iostream>

#include "common/strings.h"
#include "harness.h"
#include "sim/policies.h"
#include "sim/simulation.h"
#include "workload/generator.h"

namespace wvm::bench {
namespace {

struct SweepResult {
  int64_t bytes = 0;
  int64_t io = 0;
};

SweepResult RunChain(int num_relations, Algorithm algorithm, int rv_period) {
  Random rng(23);
  Result<Workload> w = MakeChainWorkload(
      {num_relations, /*cardinality=*/60, /*join_factor=*/3}, &rng);
  if (!w.ok()) {
    std::cerr << w.status() << "\n";
    return SweepResult{};
  }
  Result<std::vector<Update>> updates =
      MakeRoundRobinInserts(*w, 2 * num_relations, &rng);
  if (!updates.ok()) {
    std::cerr << updates.status() << "\n";
    return SweepResult{};
  }
  SimulationOptions options;
  options.bytes_per_tuple = 4;
  options.indexes = w->scenario1_indexes;
  Result<std::unique_ptr<ViewMaintainer>> maintainer =
      MakeMaintainer(algorithm, w->view, rv_period);
  if (!maintainer.ok()) {
    std::cerr << maintainer.status() << "\n";
    return SweepResult{};
  }
  Result<std::unique_ptr<Simulation>> sim = Simulation::Create(
      w->initial, w->view, std::move(*maintainer), options);
  if (!sim.ok()) {
    std::cerr << sim.status() << "\n";
    return SweepResult{};
  }
  (*sim)->SetUpdateScript(*updates);
  BestCasePolicy policy;
  Status run = RunToQuiescence(sim->get(), &policy);
  if (!run.ok()) {
    std::cerr << run << "\n";
    return SweepResult{};
  }
  return SweepResult{(*sim)->meter().bytes_transferred(),
                     (*sim)->io_stats().page_reads};
}

}  // namespace

void PrintFigure() {
  PrintTableHeader(
      "Chain length sweep: ECA vs recompute-once RV "
      "(C=60, J=3, k=2n inserts, Scenario 1)",
      {"relations", "ECA B", "RV B", "ECA IO", "RV IO"});
  JsonReport json;
  for (int n = 2; n <= 6; ++n) {
    SweepResult eca = RunChain(n, Algorithm::kEca, 1);
    SweepResult rv = RunChain(n, Algorithm::kRv, 2 * n);
    PrintTableRow({Num(n), Num(eca.bytes), Num(rv.bytes), Num(eca.io),
                   Num(rv.io)});
    json.Begin(StrCat("chain_sweep/n=", n));
    json.Metric("eca_bytes", eca.bytes);
    json.Metric("rv_bytes", rv.bytes);
    json.Metric("eca_io", eca.io);
    json.Metric("rv_io", rv.io);
  }
  json.WriteFileFromEnv();
  std::cout << "(bytes: the view — and RV's shipping cost — grows with the "
               "join product while ECA's\n per-update deltas stay small, so "
               "the paper's extrapolation holds at every n. IO: with\n "
               "k=2n>3 updates the windows sit beyond Figure 6.4's k=3 "
               "crossover, so recompute-once\n RV wins I/O here exactly as "
               "the three-relation analysis predicts.)\n";
}

namespace {

void BM_ChainSweep(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const bool rv = state.range(1) != 0;
  for (auto _ : state) {
    SweepResult r = RunChain(n, rv ? Algorithm::kRv : Algorithm::kEca,
                             rv ? 2 * n : 1);
    benchmark::DoNotOptimize(r);
    state.counters["B"] = static_cast<double>(r.bytes);
    state.counters["IO"] = static_cast<double>(r.io);
  }
}
BENCHMARK(BM_ChainSweep)
    ->ArgNames({"n", "rv"})
    ->Args({3, 0})
    ->Args({3, 1})
    ->Args({5, 0})
    ->Args({5, 1});

}  // namespace
}  // namespace wvm::bench

int main(int argc, char** argv) {
  wvm::bench::PrintFigure();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
