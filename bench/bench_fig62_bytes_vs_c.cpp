// Figure 6.2: bytes transferred B versus relation cardinality C for the
// three-insert sample scenario (Example 6; S=4, sigma=1/2, J=4).
//
// The printed table reproduces the figure's four curves — RV best/worst and
// ECA best/worst — as Appendix D closed forms side by side with the values
// measured from the full simulation (source storage, channels, ECA
// compensation machinery). The paper's reading: ECA wins everywhere except
// for relations of only a few tuples (crossover C = 3(J+1)/J ~ 4).
#include <benchmark/benchmark.h>

#include <iostream>

#include "harness.h"

namespace wvm::bench {
namespace {

CaseConfig BaseConfig(int64_t c) {
  CaseConfig config;
  config.cardinality = c;
  config.k = 3;
  config.stream = Stream::kCorrelatedInserts;  // the U1,U2,U3 of Example 6
  config.scenario = PhysicalScenario::kIndexedMemory;
  return config;
}

// Averages the measured bytes over several seeds: at small C the sampled
// selectivity sigma(W > Z) is noisy, and the paper's figure plots the
// model's expectation.
int64_t Measure(CaseConfig config) {
  constexpr int kSeeds = 20;
  int64_t total = 0;
  int ok = 0;
  for (int seed = 1; seed <= kSeeds; ++seed) {
    config.seed = static_cast<uint64_t>(seed);
    Result<CaseResult> r = RunCase(config);
    if (!r.ok()) {
      std::cerr << "run failed: " << r.status() << "\n";
      continue;
    }
    total += r->bytes;
    ++ok;
  }
  return ok > 0 ? total / ok : -1;
}

}  // namespace

void PrintFigure() {
  PrintTableHeader(
      "Figure 6.2: B (bytes) versus C — paper model vs measured",
      {"C", "RVbest", "RVbest(m)", "RVworst", "RVworst(m)", "ECAbest",
       "ECAbest(m)", "ECAworst", "ECAworst(m)"});
  for (int64_t c : {4, 6, 8, 10, 12, 16, 20}) {
    analytic::Params p;
    p.C = static_cast<double>(c);

    CaseConfig rv_best = BaseConfig(c);
    rv_best.algorithm = Algorithm::kRv;
    rv_best.rv_period = 3;  // recompute once, after U3
    CaseConfig rv_worst = rv_best;
    rv_worst.rv_period = 1;  // recompute after every update
    CaseConfig eca_best = BaseConfig(c);
    eca_best.order = Order::kBest;
    CaseConfig eca_worst = BaseConfig(c);
    eca_worst.order = Order::kWorst;

    PrintTableRow({Num(c), Num(analytic::BytesRvBest3(p)),
                   Num(Measure(rv_best)), Num(analytic::BytesRvWorst3(p)),
                   Num(Measure(rv_worst)), Num(analytic::BytesEcaBest3(p)),
                   Num(Measure(eca_best)), Num(analytic::BytesEcaWorst3(p)),
                   Num(Measure(eca_worst))});
  }
  std::cout << "(measured columns average 20 seeds; below C ~ J the "
               "generated join factor is\n capped at C so the model's "
               "J=4 columns overstate tiny relations. The paper's\n "
               "reading — ECA beats RV except for relations of a few "
               "tuples — holds.)\n";
}

namespace {

void BM_Fig62(benchmark::State& state) {
  CaseConfig config = BaseConfig(state.range(0));
  config.order = state.range(1) != 0 ? Order::kWorst : Order::kBest;
  int64_t bytes = 0;
  for (auto _ : state) {
    Result<CaseResult> r = RunCase(config);
    if (r.ok()) {
      bytes = r->bytes;
    }
    benchmark::DoNotOptimize(bytes);
  }
  state.counters["B"] = static_cast<double>(bytes);
}
BENCHMARK(BM_Fig62)
    ->ArgNames({"C", "worst"})
    ->Args({10, 0})
    ->Args({10, 1})
    ->Args({20, 0})
    ->Args({20, 1});

}  // namespace
}  // namespace wvm::bench

int main(int argc, char** argv) {
  wvm::bench::PrintFigure();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
