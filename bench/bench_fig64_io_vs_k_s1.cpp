// Figure 6.4: source I/O versus number of updates k under Scenario 1
// (memory-resident indexes, ample memory; C=100, J=4, K=20 => I=5).
//
// Curves: RV best (recompute once, 3I), RV worst (3kI), ECA best (k(J+1))
// and ECA worst (k(J+1) + k(k-1)/3 compensation probes). The paper's
// crossover: ECA-best meets RV-best at k = 3. Measured values come from
// the blocked-storage simulator executing the actual index plans; they sit
// slightly above the closed forms once accumulated inserts perturb block
// alignment (the model's constant-parameter assumption).
#include <benchmark/benchmark.h>

#include <iostream>

#include "harness.h"

namespace wvm::bench {
namespace {

int64_t MeasureIo(const CaseConfig& config) {
  Result<CaseResult> r = RunCase(config);
  if (!r.ok()) {
    std::cerr << "run failed: " << r.status() << "\n";
    return -1;
  }
  return r->io;
}

}  // namespace

void PrintFigure() {
  PrintTableHeader(
      "Figure 6.4: IO versus k, Scenario 1 — paper model vs measured",
      {"k", "RVbest", "RVbest(m)", "RVworst", "RVworst(m)", "ECAbest",
       "ECAbest(m)", "ECAworst", "ECAworst(m)"});
  analytic::Params p;
  for (int64_t k : {1, 3, 5, 7, 9, 11}) {
    // C = 94 keeps I at the paper's 5 blocks while the k <= 11 inserts
    // accumulate (the model assumes C and J do not change).
    CaseConfig rv_best;
    rv_best.cardinality = 94;
    rv_best.algorithm = Algorithm::kRv;
    rv_best.k = k;
    rv_best.rv_period = static_cast<int>(k);
    CaseConfig rv_worst = rv_best;
    rv_worst.rv_period = 1;
    CaseConfig eca_best;
    eca_best.cardinality = 94;
    eca_best.k = k;
    CaseConfig eca_worst;
    eca_worst.cardinality = 94;
    eca_worst.k = k;
    eca_worst.order = Order::kWorst;

    PrintTableRow({Num(k), Num(analytic::IoRvBestS1(p, k)),
                   Num(MeasureIo(rv_best)), Num(analytic::IoRvWorstS1(p, k)),
                   Num(MeasureIo(rv_worst)), Num(analytic::IoEcaBestS1(p, k)),
                   Num(MeasureIo(eca_best)),
                   Num(analytic::IoEcaWorstS1(p, k)),
                   Num(MeasureIo(eca_worst))});
  }
  std::cout << "(crossover: ECAbest vs RVbest at k=3)\n";
}

namespace {

void BM_Fig64(benchmark::State& state) {
  CaseConfig config;
  config.k = state.range(0);
  config.order = state.range(1) != 0 ? Order::kWorst : Order::kBest;
  int64_t io = 0;
  for (auto _ : state) {
    Result<CaseResult> r = RunCase(config);
    if (r.ok()) {
      io = r->io;
    }
    benchmark::DoNotOptimize(io);
  }
  state.counters["IO"] = static_cast<double>(io);
}
BENCHMARK(BM_Fig64)
    ->ArgNames({"k", "worst"})
    ->Args({3, 0})
    ->Args({3, 1})
    ->Args({11, 0})
    ->Args({11, 1});

}  // namespace
}  // namespace wvm::bench

int main(int argc, char** argv) {
  wvm::bench::PrintFigure();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
