// What group commit buys: the fsync count (the real cost of durability on
// a disk) against commit batch size, over real segment files.
//
// 1. Group-commit sweep: N appends of fixed-size payloads at
//    flush_appends in {1, 4, 16, 64}, fsync on. Write-through
//    (flush_appends=1) pays one fsync per record; batching divides the
//    fsync count by the batch size at the price of a longer window of
//    unsynced tail (the recovery floor synced_end_lsn lags by up to one
//    batch). Throughput should rise steeply with the batch size.
// 2. The same sweep with fsync off isolates the buffering cost from the
//    durability cost: the gap between the two tables IS the fsync bill.
// 3. Rotation sweep: segment_bytes in {16K, 64K, 256K} at a fixed batch
//    size — segment count falls, wall time barely moves (rotation is an
//    open/close, not a copy).
// 4. Recovery scan: reopen the biggest log and time the full validate
//    (header + FNV-1a checksum per record).
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "harness.h"
#include "recovery/wal.h"

namespace wvm::bench {
namespace {

constexpr int kRecords = 2000;
constexpr size_t kPayloadBytes = 128;
constexpr int kBatchSizes[] = {1, 4, 16, 64};
constexpr int64_t kSegmentBytes[] = {16 << 10, 64 << 10, 256 << 10};

std::string ScratchDir(const std::string& leaf) {
  return (std::filesystem::temp_directory_path() / "wvm-bench-wal" / leaf)
      .string();
}

WalOptions Options(const std::string& leaf) {
  WalOptions options;
  options.dir = ScratchDir(leaf);
  options.name = "bench";
  options.segment_bytes = 256 << 10;
  // Let flush_appends alone decide the batch size in the sweeps.
  options.flush_bytes = 1 << 30;
  std::error_code ec;
  std::filesystem::remove_all(options.dir, ec);
  return options;
}

struct RunResult {
  WalStats stats;
  double wall_seconds = 0;
};

/// Appends kRecords payloads and syncs the tail; dies loudly on error
/// (this is a bench, not a test).
RunResult RunAppends(const WalOptions& options) {
  Result<std::unique_ptr<WalWriter>> wal = WalWriter::Open(options);
  if (!wal.ok()) {
    std::fprintf(stderr, "bench_wal: open: %s\n",
                 wal.status().ToString().c_str());
    std::abort();
  }
  const std::string payload(kPayloadBytes, 'x');
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < kRecords; ++i) {
    Status s = (*wal)->Append(static_cast<uint64_t>(i), payload);
    if (!s.ok()) {
      std::fprintf(stderr, "bench_wal: append: %s\n", s.ToString().c_str());
      std::abort();
    }
  }
  Status sync = (*wal)->Sync();
  if (!sync.ok()) {
    std::fprintf(stderr, "bench_wal: sync: %s\n", sync.ToString().c_str());
    std::abort();
  }
  RunResult r;
  r.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  r.stats = (*wal)->stats();
  return r;
}

void GroupCommitSweep(JsonReport* json, bool fsync) {
  PrintTableHeader(
      fsync ? "Group commit: fsyncs vs batch size (2000 x 128B, fsync on)"
            : "Group commit: buffering only (fsync off)",
      {"flush_appends", "fsyncs", "flushes", "recs/fsync", "wall ms",
       "MB/s"});
  for (int batch : kBatchSizes) {
    WalOptions options =
        Options((fsync ? "commit-" : "nosync-") + std::to_string(batch));
    options.flush_appends = batch;
    options.fsync = fsync;
    RunResult r = RunAppends(options);
    const double mb = static_cast<double>(r.stats.appended_bytes) / 1e6;
    const double recs_per_fsync =
        r.stats.fsyncs > 0
            ? static_cast<double>(kRecords) /
                  static_cast<double>(r.stats.fsyncs)
            : 0;
    PrintTableRow({std::to_string(batch), std::to_string(r.stats.fsyncs),
                   std::to_string(r.stats.flushes), Num(recs_per_fsync),
                   Num(r.wall_seconds * 1e3), Num(mb / r.wall_seconds)});
    json->Begin((fsync ? "group_commit/appends=" : "buffer_only/appends=") +
                std::to_string(batch));
    json->Metric("fsyncs", r.stats.fsyncs);
    json->Metric("flushes", r.stats.flushes);
    json->Metric("records_per_fsync", recs_per_fsync);
    json->Metric("wall_seconds", r.wall_seconds);
    json->Metric("mb_per_sec", mb / r.wall_seconds);
    std::error_code ec;
    std::filesystem::remove_all(options.dir, ec);
  }
}

void RotationSweep(JsonReport* json) {
  PrintTableHeader("Segment rotation (2000 x 128B, flush_appends=16)",
                   {"segment KB", "segments", "wall ms"});
  for (int64_t bytes : kSegmentBytes) {
    WalOptions options = Options("rotate-" + std::to_string(bytes >> 10));
    options.flush_appends = 16;
    options.segment_bytes = bytes;
    RunResult r = RunAppends(options);
    PrintTableRow({std::to_string(bytes >> 10),
                   std::to_string(r.stats.segments_created),
                   Num(r.wall_seconds * 1e3)});
    json->Begin("rotation/segment_kb=" + std::to_string(bytes >> 10));
    json->Metric("segments", r.stats.segments_created);
    json->Metric("wall_seconds", r.wall_seconds);
    std::error_code ec;
    std::filesystem::remove_all(options.dir, ec);
  }
}

void RecoveryScan(JsonReport* json) {
  WalOptions options = Options("recover");
  options.flush_appends = 16;
  options.segment_bytes = 64 << 10;
  RunAppends(options);
  std::vector<WalRecoveredRecord> recovered;
  const auto start = std::chrono::steady_clock::now();
  Result<std::unique_ptr<WalWriter>> wal = WalWriter::Open(options, &recovered);
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  if (!wal.ok()) {
    std::fprintf(stderr, "bench_wal: reopen: %s\n",
                 wal.status().ToString().c_str());
    std::abort();
  }
  PrintTableHeader("Recovery scan (validate every header + checksum)",
                   {"records", "wall ms", "recs/ms"});
  PrintTableRow({std::to_string(recovered.size()), Num(wall * 1e3),
                 Num(static_cast<double>(recovered.size()) / (wall * 1e3))});
  json->Begin("recovery_scan");
  json->Metric("recovered_records", static_cast<int64_t>(recovered.size()));
  json->Metric("wall_seconds", wall);
  std::error_code ec;
  std::filesystem::remove_all(options.dir, ec);
}

void PrintFigure(JsonReport* json) {
  GroupCommitSweep(json, /*fsync=*/true);
  GroupCommitSweep(json, /*fsync=*/false);
  RotationSweep(json);
  RecoveryScan(json);
}

void BM_WalAppendSync(benchmark::State& state) {
  WalOptions options = Options("bm");
  options.flush_appends = static_cast<int>(state.range(0));
  Result<std::unique_ptr<WalWriter>> wal = WalWriter::Open(options);
  if (!wal.ok()) {
    state.SkipWithError(wal.status().ToString().c_str());
    return;
  }
  const std::string payload(kPayloadBytes, 'x');
  uint64_t lsn = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize((*wal)->Append(lsn++, payload));
  }
  state.SetBytesProcessed(static_cast<int64_t>(lsn * kPayloadBytes));
  wal->reset();
  std::error_code ec;
  std::filesystem::remove_all(options.dir, ec);
}
BENCHMARK(BM_WalAppendSync)->ArgNames({"flush_appends"})->Arg(1)->Arg(16);

}  // namespace
}  // namespace wvm::bench

int main(int argc, char** argv) {
  wvm::bench::JsonReport json;
  wvm::bench::PrintFigure(&json);
  json.WriteFileFromEnv();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
