// The concurrent source query engine, quantified: the cross-query term
// cache (incrementally patched under updates) and parallel snapshot
// evaluation of pending query batches, measured against the paper's plain
// serial no-caching source.
//
// The workload regime is hot-tuple churn: updates cycle insert/delete over
// a small pool of tuples per relation, so the compensating queries the ECA
// family sends keep re-deriving the same term shapes. Under the worst-case
// interleaving every update precedes every answer, which maximizes both
// compensation (many repeated shapes per query) and the number of pending
// queries a batch can fan out. RV's periodic recomputation shows the patch
// path: its recompute terms have one shape, patched in place as updates
// land instead of being re-read from disk.
#include <benchmark/benchmark.h>

#include <iostream>

#include "common/strings.h"
#include "harness.h"

namespace wvm::bench {
namespace {

CaseConfig ChurnCase(Algorithm algorithm, Order order, bool engine_on) {
  CaseConfig config;
  config.algorithm = algorithm;
  config.cardinality = 94;  // keep I at 5, as the ablation benches do
  config.k = 24;
  config.stream = Stream::kChurn;
  config.churn_pool = 4;
  config.order = order;
  config.term_cache.enabled = engine_on;
  config.parallel_source_answers = engine_on;
  return config;
}

struct Cell {
  CaseResult off;
  CaseResult on;
};

Result<Cell> RunPair(CaseConfig config) {
  Cell cell;
  CaseConfig off = config;
  off.term_cache.enabled = false;
  off.parallel_source_answers = false;
  WVM_ASSIGN_OR_RETURN(cell.off, RunCase(off));
  WVM_ASSIGN_OR_RETURN(cell.on, RunCase(config));
  return cell;
}

std::string Ratio(int64_t off, int64_t on) {
  if (on <= 0) {
    return "inf";
  }
  return StrCat(Num(static_cast<double>(off) / static_cast<double>(on)), "x");
}

void PrintFigure(JsonReport* report) {
  PrintTableHeader(
      "Source engine: term cache + parallel batches (churn, k=24)",
      {"case", "IO off", "IO on", "speedup", "hits", "patches", "consist"});

  struct Row {
    const char* name;
    CaseConfig config;
  };
  std::vector<Row> rows;
  rows.push_back({"eca/worst", ChurnCase(Algorithm::kEca, Order::kWorst,
                                         /*engine_on=*/true)});
  rows.push_back({"eca/random", ChurnCase(Algorithm::kEca, Order::kRandom,
                                          /*engine_on=*/true)});
  {
    Row r{"eca-key/worst", ChurnCase(Algorithm::kEcaKey, Order::kWorst,
                                     /*engine_on=*/true)};
    r.config.keyed_workload = true;
    rows.push_back(r);
  }
  {
    // RV recomputes the whole view every update: one term shape for the
    // entire run, kept current purely by delta patches after the first
    // fill.
    Row r{"rv/patching", ChurnCase(Algorithm::kRv, Order::kBest,
                                   /*engine_on=*/true)};
    r.config.parallel_source_answers = false;  // isolate the patch path
    rows.push_back(r);
  }

  bool all_ok = true;
  for (const Row& row : rows) {
    Result<Cell> cell = RunPair(row.config);
    if (!cell.ok()) {
      std::cerr << "run failed: " << cell.status() << "\n";
      all_ok = false;
      continue;
    }
    const CaseResult& off = cell->off;
    const CaseResult& on = cell->on;
    const bool consistent = off.convergent && on.convergent &&
                            off.final_view_size == on.final_view_size;
    all_ok = all_ok && consistent;
    PrintTableRow({row.name, Num(static_cast<double>(off.io)),
                   Num(static_cast<double>(on.io)), Ratio(off.io, on.io),
                   Num(static_cast<double>(on.term_cache_hits)),
                   Num(static_cast<double>(on.term_cache_patches)),
                   consistent ? "yes" : "NO"});
    report->Begin(StrCat("source_engine/", row.name));
    report->Metric("io_off", off.io);
    report->Metric("io_on", on.io);
    report->Metric("io_speedup",
                   on.io > 0
                       ? static_cast<double>(off.io) /
                             static_cast<double>(on.io)
                       : static_cast<double>(off.io));
    report->Metric("wall_seconds_off", off.wall_seconds);
    report->Metric("wall_seconds_on", on.wall_seconds);
    report->Metric("cache_hits", on.term_cache_hits);
    report->Metric("cache_misses", on.term_cache_misses);
    report->Metric("cache_patches", on.term_cache_patches);
    report->Metric("cache_evictions", on.term_cache_evictions);
    report->Metric("cache_patch_reads", on.term_cache_patch_reads);
    report->Metric("answers_match", static_cast<int64_t>(consistent ? 1 : 0));
  }
  std::cout << "(engine on = cross-query term cache + parallel batch "
               "answers; 'IO' is the paper's\n page-read meter — patch "
               "reads are metered separately — and 'consist' checks the\n "
               "warehouse converged to the same view either way)\n";
  if (!all_ok) {
    std::cerr << "warning: at least one cell failed or diverged\n";
  }
}

void BM_SourceEngine(benchmark::State& state) {
  const bool engine_on = state.range(0) != 0;
  for (auto _ : state) {
    CaseConfig config =
        ChurnCase(Algorithm::kEca, Order::kWorst, engine_on);
    Result<CaseResult> r = RunCase(config);
    if (!r.ok()) {
      state.SkipWithError("run failed");
      return;
    }
    benchmark::DoNotOptimize(r->io);
    state.counters["IO"] = static_cast<double>(r->io);
    state.counters["hits"] = static_cast<double>(r->term_cache_hits);
  }
}
BENCHMARK(BM_SourceEngine)->ArgNames({"engine"})->Arg(0)->Arg(1);

}  // namespace
}  // namespace wvm::bench

int main(int argc, char** argv) {
  wvm::bench::JsonReport report;
  wvm::bench::PrintFigure(&report);
  report.WriteFileFromEnv();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
