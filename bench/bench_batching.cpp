// The Section 7 batching extension: "handle a set of updates at once".
//
// EcaBatch answers one batch notification with a single inclusion-exclusion
// query, cutting messages from 2k to 2*ceil(k/b) while keeping strong
// consistency. The table compares plain ECA (which processes a batched
// notification update-by-update) against EcaBatch across batch sizes: the
// message saving is the point; the query grows by the surviving
// inclusion-exclusion terms.
#include <benchmark/benchmark.h>

#include <iostream>

#include "harness.h"

namespace wvm::bench {
namespace {

CaseResult Must(Algorithm algorithm, int batch_size, int64_t k) {
  CaseConfig config;
  config.algorithm = algorithm;
  config.k = k;
  config.batch_size = batch_size;
  config.stream = Stream::kRoundRobinInserts;
  config.order = Order::kBest;
  Result<CaseResult> r = RunCase(config);
  if (!r.ok()) {
    std::cerr << "run failed: " << r.status() << "\n";
    return CaseResult{};
  }
  return *r;
}

}  // namespace

void PrintFigure() {
  const int64_t k = 24;
  PrintTableHeader(
      "Section 7 batching extension, k=24 inserts",
      {"batch", "algorithm", "notif.", "M", "terms", "B", "strong"});
  for (int batch : {1, 2, 4, 8}) {
    for (Algorithm algorithm : {Algorithm::kEca, Algorithm::kEcaBatch}) {
      if (batch == 1 && algorithm == Algorithm::kEcaBatch) {
        continue;  // identical to ECA at batch size 1
      }
      CaseResult r = Must(algorithm, batch, k);
      PrintTableRow({Num(batch), AlgorithmName(algorithm),
                     Num(r.notifications), Num(r.messages),
                     Num(r.query_terms), Num(r.bytes),
                     r.strongly_consistent ? "yes" : "NO"});
    }
  }
  std::cout << "(eca-batch: messages drop to 2*ceil(k/b); surviving "
               "inclusion-exclusion terms add bytes)\n";
}

namespace {

void BM_Batching(benchmark::State& state) {
  const bool batched = state.range(1) != 0;
  for (auto _ : state) {
    CaseResult r = Must(batched ? Algorithm::kEcaBatch : Algorithm::kEca,
                        static_cast<int>(state.range(0)), 24);
    benchmark::DoNotOptimize(r);
    state.counters["M"] = static_cast<double>(r.messages);
  }
}
BENCHMARK(BM_Batching)
    ->ArgNames({"batch", "incexc"})
    ->Args({4, 0})
    ->Args({4, 1})
    ->Args({8, 0})
    ->Args({8, 1});

}  // namespace
}  // namespace wvm::bench

int main(int argc, char** argv) {
  wvm::bench::PrintFigure();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
