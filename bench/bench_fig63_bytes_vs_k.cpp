// Figure 6.3: bytes transferred B versus number of updates k at C = 100.
//
// Reproduces the figure's four curves (RV best/worst, ECA best/worst) from
// the Appendix D k-update closed forms next to measured values. The two
// crossovers the paper calls out: ECA-best meets recompute-once RV at
// k = C = 100, and ECA-worst (quadratic compensation) meets it near k = 30.
// Measured ECA-worst uses the correlated (hot-value) insert stream that
// realizes the analysis's every-pair-joins idealization; measured values
// drift upward with k because the inserts themselves grow C and J, which
// the model holds constant (Section 6.2, assumption 5).
#include <benchmark/benchmark.h>

#include <iostream>

#include "harness.h"

namespace wvm::bench {
namespace {

int64_t Measure(const CaseConfig& config) {
  Result<CaseResult> r = RunCase(config);
  if (!r.ok()) {
    std::cerr << "run failed: " << r.status() << "\n";
    return -1;
  }
  return r->bytes;
}

}  // namespace

void PrintFigure() {
  PrintTableHeader(
      "Figure 6.3: B (bytes) versus k at C=100 — paper model vs measured",
      {"k", "RVbest", "RVbest(m)", "RVworst", "RVworst(m)", "ECAbest",
       "ECAbest(m)", "ECAworst", "ECAworst(m)"});
  analytic::Params p;
  for (int64_t k : {3, 15, 30, 45, 60, 90, 120}) {
    CaseConfig rv_best;
    rv_best.algorithm = Algorithm::kRv;
    rv_best.k = k;
    rv_best.rv_period = static_cast<int>(k);
    CaseConfig rv_worst = rv_best;
    rv_worst.rv_period = 1;

    CaseConfig eca_best;
    eca_best.k = k;
    eca_best.order = Order::kBest;
    CaseConfig eca_worst;
    eca_worst.k = k;
    eca_worst.order = Order::kWorst;
    eca_worst.stream = Stream::kCorrelatedInserts;

    PrintTableRow({Num(k), Num(analytic::BytesRvBest(p, k)),
                   Num(Measure(rv_best)), Num(analytic::BytesRvWorst(p, k)),
                   Num(Measure(rv_worst)), Num(analytic::BytesEcaBest(p, k)),
                   Num(Measure(eca_best)), Num(analytic::BytesEcaWorst(p, k)),
                   Num(Measure(eca_worst))});
  }
  std::cout << "(crossover: ECAbest vs RVbest at k=100; ECAworst vs RVbest "
               "near k=30)\n";
}

namespace {

void BM_Fig63(benchmark::State& state) {
  CaseConfig config;
  config.k = state.range(0);
  const bool worst = state.range(1) != 0;
  config.order = worst ? Order::kWorst : Order::kBest;
  config.stream =
      worst ? Stream::kCorrelatedInserts : Stream::kRoundRobinInserts;
  int64_t bytes = 0;
  for (auto _ : state) {
    Result<CaseResult> r = RunCase(config);
    if (r.ok()) {
      bytes = r->bytes;
    }
    benchmark::DoNotOptimize(bytes);
  }
  state.counters["B"] = static_cast<double>(bytes);
}
BENCHMARK(BM_Fig63)
    ->ArgNames({"k", "worst"})
    ->Args({30, 0})
    ->Args({30, 1})
    ->Args({120, 0})
    ->Args({120, 1});

}  // namespace
}  // namespace wvm::bench

int main(int argc, char** argv) {
  wvm::bench::PrintFigure();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
