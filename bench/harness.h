#ifndef WVM_BENCH_HARNESS_H_
#define WVM_BENCH_HARNESS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "analytic/cost_model.h"
#include "common/result.h"
#include "core/factory.h"
#include "source/physical_evaluator.h"
#include "source/term_cache.h"
#include "transport/fault_config.h"

namespace wvm::bench {

/// Which update stream the source executes.
enum class Stream {
  /// k single-tuple inserts cycling r1, r2, r3 with join attributes drawn
  /// from the live domain (the Appendix D k-update scenario).
  kRoundRobinInserts,
  /// Like the above but sharing hot join values so every cross-relation
  /// pair of updates joins — the idealization behind the ECA worst-case
  /// byte formulas.
  kCorrelatedInserts,
  /// Mixed inserts/deletes (35% deletes) for the correctness benchmarks.
  kMixed,
  /// Insert/delete churn cycling a small pool of hot tuples per relation,
  /// so compensating-term shapes repeat across updates (the regime the
  /// source's cross-query term cache exploits).
  kChurn,
};

/// Which interleaving drives the run.
enum class Order { kBest, kWorst, kRandom };

/// One benchmark cell: an algorithm, a workload, an interleaving.
struct CaseConfig {
  Algorithm algorithm = Algorithm::kEca;
  int64_t cardinality = 100;  // C
  int64_t join_factor = 4;    // J
  int64_t k = 3;              // number of updates
  Stream stream = Stream::kRoundRobinInserts;
  Order order = Order::kBest;
  PhysicalScenario scenario = PhysicalScenario::kIndexedMemory;
  int tuples_per_block = 20;  // K
  int rv_period = 1;          // s (RV only)
  int batch_size = 1;
  uint64_t seed = 17;
  /// Section 6.3 extensions (see PhysicalConfig).
  bool cache_within_query = false;
  bool optimize_terms = false;
  /// Source engine extensions (see SourceConfig): the incrementally
  /// patched cross-query term cache, and parallel snapshot evaluation of
  /// pending query batches. Both off by default.
  TermCacheConfig term_cache;
  bool parallel_source_answers = false;
  /// Hot-tuple pool size per relation for Stream::kChurn.
  int64_t churn_pool = 8;
  /// Use the two-relation keyed workload (required by ECA-Key) instead of
  /// Example 6.
  bool keyed_workload = false;
  /// Use the key/FK star workload (orders -> parts -> suppliers) with the
  /// integrity-preserving fk-star update stream — `stream` is ignored.
  /// `cardinality` sets the orders count; dimensions scale with it. This
  /// is the workload SelfMaintainer's decision procedure feeds on.
  bool fk_star_workload = false;
  /// Parts with no referencing order at init (fk-star only): each is a row
  /// self-maintenance cannot prove locally, forcing a source fallback when
  /// an update reaches for it.
  int64_t cold_parts = 2;
  /// Options for Algorithm::kSelfMaintain (complements + pruning).
  SelfMaintainOptions self_maintain;
  /// Transport fault schedule (src/transport); off by default, so every
  /// pre-existing bench cell is byte-identical to the fault-free system.
  FaultConfig fault;
};

/// Measured outcome of one run.
struct CaseResult {
  int64_t messages = 0;
  int64_t notifications = 0;
  int64_t bytes = 0;
  int64_t io = 0;
  int64_t query_terms = 0;
  bool convergent = false;
  bool strongly_consistent = false;
  bool complete = false;
  std::string final_view_size;
  /// Transport-protocol overhead (all zero with faults off).
  int64_t retransmitted_messages = 0;
  int64_t retransmitted_bytes = 0;
  int64_t ack_messages = 0;
  int64_t frames_dropped = 0;
  /// Staleness of the run (consistency/staleness.h): fraction of source
  /// states ever shown, and mean event lag over the visible ones.
  double staleness_coverage = 0;
  double staleness_mean_lag = 0;
  /// Source term-cache meters (all zero with the cache off). Patch reads
  /// are source-side maintenance I/O, excluded from `io` above.
  int64_t term_cache_hits = 0;
  int64_t term_cache_misses = 0;
  int64_t term_cache_patches = 0;
  int64_t term_cache_evictions = 0;
  int64_t term_cache_patch_reads = 0;
  /// Wall-clock seconds of the simulation run itself (excludes workload
  /// generation and setup).
  double wall_seconds = 0;
  /// Warehouse-to-source queries (subset of `messages`): the traffic
  /// self-maintenance exists to eliminate.
  int64_t query_messages = 0;
  /// Self-maintenance meters (all zero unless the maintainer is a
  /// SelfMaintainer): updates answered with no source round-trip, updates
  /// that shipped a query, the constraint-proven-empty subset, and the
  /// auxiliary complement footprint in rows.
  int64_t local_updates = 0;
  int64_t remote_updates = 0;
  int64_t constraint_empty_updates = 0;
  int64_t aux_rows = 0;
  /// local_updates / (local + remote); 0 when neither counter moved.
  double local_rate = 0;
};

/// Builds the Example 6 workload, runs the configured case to quiescence,
/// and returns the meters plus the consistency verdicts.
Result<CaseResult> RunCase(const CaseConfig& config);

/// Fixed-width helpers for the paper-style tables the bench binaries print.
void PrintTableHeader(const std::string& title,
                      const std::vector<std::string>& columns);
void PrintTableRow(const std::vector<std::string>& cells);
std::string Num(double v);

/// Machine-readable companion to the printed tables: collects named records
/// of numeric metrics and serializes them as
///   {"benchmarks": [{"name": "...", "<metric>": <value>, ...}, ...]}
/// so runs can be diffed or tracked without re-parsing table text.
class JsonReport {
 public:
  /// Starts a record; subsequent Metric calls attach to it.
  void Begin(const std::string& name);
  void Metric(const std::string& key, double value);
  void Metric(const std::string& key, int64_t value);

  std::string ToString() const;

  /// Writes the report to `path`; returns false on I/O failure.
  bool WriteFile(const std::string& path) const;

  /// Writes to the path named by the environment variable `env_var` (used
  /// as `WVM_BENCH_JSON=out.json ./bench_...`); no-op when it is unset.
  bool WriteFileFromEnv(const char* env_var = "WVM_BENCH_JSON") const;

 private:
  struct Record {
    std::string name;
    std::vector<std::pair<std::string, std::string>> metrics;
  };
  std::vector<Record> records_;
};

}  // namespace wvm::bench

#endif  // WVM_BENCH_HARNESS_H_
