// Staleness / visibility lag: the cost of each correctness level in a
// dimension the paper motivates but does not plot. Section 1.1 asks for
// "prompt and correct propagation"; Section 3.1 notes ECA may skip
// intermediate states while COLLECT accumulates, SC/LCA track the source
// state for state, and RV lags until the next recomputation. This table
// quantifies all of that: what fraction of source states each algorithm
// ever shows, and how many events it takes to show them.
#include <benchmark/benchmark.h>

#include <iostream>

#include "consistency/staleness.h"
#include "harness.h"
#include "sim/policies.h"
#include "sim/simulation.h"
#include "workload/generator.h"

namespace wvm::bench {
namespace {

struct StalenessRow {
  double coverage = 0;
  double mean_lag = 0;
  int64_t max_lag = 0;
  int64_t messages = 0;
};

StalenessRow RunStaleness(Algorithm algorithm, int rv_period,
                          uint64_t seed) {
  Random rng(seed);
  Result<Workload> w = MakeExample6Workload({40, 4}, &rng);
  if (!w.ok()) {
    std::cerr << w.status() << "\n";
    return StalenessRow{};
  }
  Result<std::vector<Update>> updates = MakeMixedUpdates(*w, 24, 0.3, &rng);
  if (!updates.ok()) {
    std::cerr << updates.status() << "\n";
    return StalenessRow{};
  }
  Result<std::unique_ptr<ViewMaintainer>> maintainer =
      MakeMaintainer(algorithm, w->view, rv_period);
  if (!maintainer.ok()) {
    std::cerr << maintainer.status() << "\n";
    return StalenessRow{};
  }
  Result<std::unique_ptr<Simulation>> sim = Simulation::Create(
      w->initial, w->view, std::move(*maintainer), SimulationOptions());
  if (!sim.ok()) {
    std::cerr << sim.status() << "\n";
    return StalenessRow{};
  }
  (*sim)->SetUpdateScript(*updates);
  RandomPolicy policy(seed * 3);
  Status run = RunToQuiescence(sim->get(), &policy);
  if (!run.ok()) {
    std::cerr << run << "\n";
    return StalenessRow{};
  }
  StalenessReport report = MeasureStaleness((*sim)->state_log());
  return StalenessRow{report.coverage, report.mean_lag, report.max_lag,
                      (*sim)->meter().messages()};
}

}  // namespace

void PrintFigure() {
  PrintTableHeader(
      "Visibility of source states (k=24 mixed updates, random order, "
      "avg of 10 seeds)",
      {"algorithm", "coverage%", "mean lag", "max lag", "avg M"});
  struct Entry {
    Algorithm algorithm;
    int rv_period;
  } entries[] = {
      {Algorithm::kSc, 1},   {Algorithm::kLca, 1}, {Algorithm::kEca, 1},
      {Algorithm::kEcaLocal, 1}, {Algorithm::kRv, 4}, {Algorithm::kRv, 12},
  };
  for (const Entry& e : entries) {
    double coverage = 0;
    double mean_lag = 0;
    int64_t max_lag = 0;
    int64_t messages = 0;
    constexpr int kSeeds = 10;
    for (int seed = 1; seed <= kSeeds; ++seed) {
      StalenessRow row = RunStaleness(e.algorithm, e.rv_period,
                                      static_cast<uint64_t>(seed));
      coverage += row.coverage;
      mean_lag += row.mean_lag;
      max_lag = std::max(max_lag, row.max_lag);
      messages += row.messages;
    }
    std::string label = AlgorithmName(e.algorithm);
    if (e.algorithm == Algorithm::kRv) {
      label += "(s=" + std::to_string(e.rv_period) + ")";
    }
    PrintTableRow({label, Num(100.0 * coverage / kSeeds),
                   Num(mean_lag / kSeeds), Num(max_lag),
                   Num(static_cast<double>(messages) / kSeeds)});
  }
  std::cout << "(sc and lca show every source state — completeness; eca "
               "trades coverage for its\n batched installs; rv's coverage "
               "shrinks with the recompute period (only the states\n near a "
               "recomputation are ever shown): the Section 3.1 correctness "
               "levels, priced in\n events)\n";
}

namespace {

void BM_Staleness(benchmark::State& state) {
  const Algorithm algorithm = static_cast<Algorithm>(state.range(0));
  for (auto _ : state) {
    StalenessRow row = RunStaleness(algorithm, 4, 7);
    benchmark::DoNotOptimize(row);
    state.counters["coverage"] = row.coverage;
    state.counters["mean_lag"] = row.mean_lag;
  }
}
BENCHMARK(BM_Staleness)
    ->ArgNames({"algorithm"})
    ->Arg(static_cast<int>(Algorithm::kEca))
    ->Arg(static_cast<int>(Algorithm::kLca))
    ->Arg(static_cast<int>(Algorithm::kSc));

}  // namespace
}  // namespace wvm::bench

int main(int argc, char** argv) {
  wvm::bench::PrintFigure();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
