// Self-maintenance: answering updates without querying the source.
// The paper's Section 7 points at auxiliary data ("store copies of the
// base relations") as the way to make a warehouse self-maintainable; this
// bench prices the middle ground the SchemaConstraints API unlocks —
// constraint proofs need NO auxiliary state, pruned complements need only
// the referenced dimension rows — against ECA and ECA-Key on the same
// streams:
//
//   1. the key/FK star (orders -> parts -> suppliers): message count M,
//      warehouse->source queries, bytes B, source I/O, the fraction of
//      updates answered locally, and staleness coverage/lag;
//   2. the keyed two-relation workload (keys, no FKs): full complements
//      still answer everything locally — at the price of mirroring the
//      base relations;
//   3. the ablation: complements off leaves only the constraint proofs
//      and view-side key deletes.
#include <benchmark/benchmark.h>

#include <iostream>
#include <string>
#include <vector>

#include "harness.h"

namespace wvm::bench {
namespace {

constexpr int kSeeds = 10;

struct Cell {
  std::string label;
  CaseConfig config;
};

// Averages RunCase over seeds; every run must stay strongly consistent.
struct Averaged {
  double messages = 0;
  double queries = 0;
  double bytes = 0;
  double io = 0;
  double local_rate = 0;
  double constraint_empty = 0;
  double aux_rows = 0;
  double coverage = 0;
  double mean_lag = 0;
  double wall_seconds = 0;
  bool strongly_consistent = true;
};

Averaged RunAveraged(const CaseConfig& base) {
  Averaged avg;
  for (int seed = 1; seed <= kSeeds; ++seed) {
    CaseConfig config = base;
    config.seed = static_cast<uint64_t>(seed) * 101 + 7;
    Result<CaseResult> r = RunCase(config);
    if (!r.ok()) {
      std::cerr << r.status() << "\n";
      avg.strongly_consistent = false;
      return avg;
    }
    avg.messages += static_cast<double>(r->messages) / kSeeds;
    avg.queries += static_cast<double>(r->query_messages) / kSeeds;
    avg.bytes += static_cast<double>(r->bytes) / kSeeds;
    avg.io += static_cast<double>(r->io) / kSeeds;
    avg.local_rate += r->local_rate / kSeeds;
    avg.constraint_empty +=
        static_cast<double>(r->constraint_empty_updates) / kSeeds;
    avg.aux_rows += static_cast<double>(r->aux_rows) / kSeeds;
    avg.coverage += r->staleness_coverage / kSeeds;
    avg.mean_lag += r->staleness_mean_lag / kSeeds;
    avg.wall_seconds += r->wall_seconds / kSeeds;
    avg.strongly_consistent =
        avg.strongly_consistent && r->strongly_consistent;
  }
  return avg;
}

void PrintComparison(const std::string& title, const std::string& json_prefix,
                     const std::vector<Cell>& cells, JsonReport* report) {
  PrintTableHeader(title, {"algorithm", "M", "queries", "B", "io", "local%",
                           "aux rows", "coverage%", "mean lag", "strong"});
  for (const Cell& cell : cells) {
    Averaged a = RunAveraged(cell.config);
    PrintTableRow({cell.label, Num(a.messages), Num(a.queries), Num(a.bytes),
                   Num(a.io), Num(100.0 * a.local_rate), Num(a.aux_rows),
                   Num(100.0 * a.coverage), Num(a.mean_lag),
                   a.strongly_consistent ? "yes" : "NO"});
    report->Begin(json_prefix + "/" + cell.label);
    report->Metric("messages", a.messages);
    report->Metric("query_messages", a.queries);
    report->Metric("bytes", a.bytes);
    report->Metric("io", a.io);
    report->Metric("local_rate", a.local_rate);
    report->Metric("constraint_empty_updates", a.constraint_empty);
    report->Metric("aux_rows", a.aux_rows);
    report->Metric("staleness_coverage", a.coverage);
    report->Metric("staleness_mean_lag", a.mean_lag);
    report->Metric("wall_seconds", a.wall_seconds);
    report->Metric("strongly_consistent",
                   static_cast<int64_t>(a.strongly_consistent ? 1 : 0));
  }
}

CaseConfig StarConfig(Algorithm algorithm) {
  CaseConfig config;
  config.algorithm = algorithm;
  config.fk_star_workload = true;
  config.cardinality = 96;  // orders; parts=24, suppliers=8
  config.cold_parts = 2;
  config.k = 40;
  config.order = Order::kRandom;
  return config;
}

CaseConfig KeyedConfig(Algorithm algorithm) {
  CaseConfig config;
  config.algorithm = algorithm;
  config.keyed_workload = true;
  config.cardinality = 48;
  config.join_factor = 3;
  config.k = 24;
  config.stream = Stream::kMixed;
  config.order = Order::kRandom;
  return config;
}

}  // namespace

void PrintFigure(JsonReport* report) {
  // 1. Key/FK star: constraints do the heavy lifting — dimension churn is
  // proven empty outright, order traffic resolves against the pruned
  // dimension complements, and only cold-part references query the source.
  CaseConfig no_complements = StarConfig(Algorithm::kSelfMaintain);
  no_complements.self_maintain.complements = false;
  PrintComparison(
      "Key/FK star, k=40 integrity-preserving updates, random order, avg "
      "of " + std::to_string(kSeeds) + " seeds",
      "fk_star",
      {{"eca", StarConfig(Algorithm::kEca)},
       {"eca-key", StarConfig(Algorithm::kEcaKey)},
       {"self-maint", StarConfig(Algorithm::kSelfMaintain)},
       {"self-maint-noaux", no_complements}},
      report);
  std::cout << "(self-maint keeps only the referenced dimension rows as "
               "auxiliary state and answers\n nearly every update locally; "
               "the no-complement ablation still zeroes dimension churn\n "
               "via the constraint proofs but ships order inserts)\n";

  // 2. Keys without FKs: nothing is provably empty, so locality costs a
  // full mirror of the base relations (the Section 7 store-copies bound).
  PrintComparison(
      "Keyed 2-relation workload, k=24 mixed updates, random order, avg "
      "of " + std::to_string(kSeeds) + " seeds",
      "keyed",
      {{"eca", KeyedConfig(Algorithm::kEca)},
       {"eca-key", KeyedConfig(Algorithm::kEcaKey)},
       {"self-maint", KeyedConfig(Algorithm::kSelfMaintain)}},
      report);
  std::cout << "(without declared FKs the complements degrade to full base "
               "mirrors — local answers\n remain total but aux rows track "
               "the base cardinality)\n";
}

namespace {

void BM_SelfMaintenance(benchmark::State& state) {
  const auto algorithm = static_cast<Algorithm>(state.range(0));
  for (auto _ : state) {
    Result<CaseResult> r = RunCase(StarConfig(algorithm));
    benchmark::DoNotOptimize(r);
    if (r.ok()) {
      state.counters["local_rate"] = r->local_rate;
      state.counters["query_messages"] =
          static_cast<double>(r->query_messages);
    }
  }
}
BENCHMARK(BM_SelfMaintenance)
    ->ArgNames({"algorithm"})
    ->Arg(static_cast<int>(Algorithm::kEca))
    ->Arg(static_cast<int>(Algorithm::kSelfMaintain));

}  // namespace
}  // namespace wvm::bench

int main(int argc, char** argv) {
  wvm::bench::JsonReport report;
  wvm::bench::PrintFigure(&report);
  report.WriteFileFromEnv();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
