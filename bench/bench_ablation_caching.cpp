// Section 6.3's closing remark, quantified: "we expect that the I/O
// performance of ECA would improve if we incorporated multiple term
// optimization or caching into the analysis."
//
// The table runs the worst-case interleaving (all updates before any
// query, maximal compensation) in both physical scenarios, toggling the
// per-query block cache and the multiple-term optimization, and reports
// the measured page reads. RV is included to show caching also collapses
// the nested-loop recomputation (its rescans are all cache hits).
#include <benchmark/benchmark.h>

#include <iostream>

#include "harness.h"

namespace wvm::bench {
namespace {

int64_t MeasureIo(Algorithm algorithm, PhysicalScenario scenario, bool cache,
                  bool optimize, int64_t k) {
  CaseConfig config;
  config.algorithm = algorithm;
  config.cardinality = 94;  // keep I at 5 throughout (see Figure 6.5 note)
  config.k = k;
  // Correlated inserts repeat bound tuples across compensating terms, so
  // the multiple-term optimization has shapes to merge.
  config.stream = Stream::kCorrelatedInserts;
  config.order = Order::kWorst;
  config.scenario = scenario;
  config.rv_period = 1;
  config.cache_within_query = cache;
  config.optimize_terms = optimize;
  Result<CaseResult> r = RunCase(config);
  if (!r.ok()) {
    std::cerr << "run failed: " << r.status() << "\n";
    return -1;
  }
  return r->io;
}

void PrintRows(PhysicalScenario scenario, const char* label, int64_t k) {
  for (Algorithm algorithm : {Algorithm::kEca, Algorithm::kRv}) {
    const int64_t base = MeasureIo(algorithm, scenario, false, false, k);
    const int64_t cached = MeasureIo(algorithm, scenario, true, false, k);
    const int64_t optimized = MeasureIo(algorithm, scenario, false, true, k);
    const int64_t both = MeasureIo(algorithm, scenario, true, true, k);
    PrintTableRow({label, AlgorithmName(algorithm), Num(base), Num(cached),
                   Num(optimized), Num(both),
                   Num(100.0 - 100.0 * static_cast<double>(both) /
                                   static_cast<double>(base))});
  }
}

}  // namespace

void PrintFigure() {
  const int64_t k = 9;
  PrintTableHeader(
      "Caching / multiple-term ablation (worst case, k=9 inserts)",
      {"scenario", "algorithm", "paper", "+cache", "+terms", "+both",
       "saved%"});
  PrintRows(PhysicalScenario::kIndexedMemory, "S1 indexed", k);
  PrintRows(PhysicalScenario::kNestedLoopLimited, "S2 3-buffer", k);
  std::cout << "('paper' = the no-caching accounting of Appendix D; the "
               "savings confirm the paper's\n expectation that caching and "
               "multi-term optimization would improve ECA's I/O)\n";
}

namespace {

void BM_CachingAblation(benchmark::State& state) {
  const bool cache = state.range(0) != 0;
  for (auto _ : state) {
    int64_t io = MeasureIo(Algorithm::kEca,
                           PhysicalScenario::kNestedLoopLimited, cache,
                           cache, 9);
    benchmark::DoNotOptimize(io);
    state.counters["IO"] = static_cast<double>(io);
  }
}
BENCHMARK(BM_CachingAblation)->ArgNames({"cached"})->Arg(0)->Arg(1);

}  // namespace
}  // namespace wvm::bench

int main(int argc, char** argv) {
  wvm::bench::PrintFigure();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
