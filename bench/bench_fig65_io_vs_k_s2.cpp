// Figure 6.5: source I/O versus number of updates k under Scenario 2
// (no indexes, 3 buffer blocks, blocked nested loops).
//
// Paper curves: RV best I^3, RV worst kI^3, ECA best kII', ECA worst
// kII' + Ik(k-1)/3; crossover ECA-worst vs RV-best at 5 < k < 8. The
// storage simulator also charges each outer block load, which the paper's
// leading-term derivation drops; the "op" columns give those refined
// forms (recompute: I + I^2 + I^3; per-update term: I + II'), which the
// measured values match exactly. C = 94 is used for the measured runs so
// the inserted tuples do not bump the block counts mid-run (I and I' stay
// at the paper's 5 and 3).
#include <benchmark/benchmark.h>

#include <iostream>

#include "harness.h"

namespace wvm::bench {
namespace {

constexpr int64_t kMeasuredC = 94;

int64_t MeasureIo(const CaseConfig& config) {
  Result<CaseResult> r = RunCase(config);
  if (!r.ok()) {
    std::cerr << "run failed: " << r.status() << "\n";
    return -1;
  }
  return r->io;
}

CaseConfig S2Config(int64_t k) {
  CaseConfig config;
  config.cardinality = kMeasuredC;
  config.k = k;
  config.scenario = PhysicalScenario::kNestedLoopLimited;
  return config;
}

}  // namespace

void PrintFigure() {
  PrintTableHeader(
      "Figure 6.5: IO versus k, Scenario 2 — paper model vs measured",
      {"k", "RVbest", "RVbest(op)", "RVbest(m)", "RVworst", "ECAbest",
       "ECAbest(op)", "ECAbest(m)", "ECAworst", "ECAworst(m)"});
  analytic::Params p;  // I=5, I'=3, identical for C=94 and C=100
  for (int64_t k : {1, 3, 5, 7, 9, 11}) {
    CaseConfig rv_best = S2Config(k);
    rv_best.algorithm = Algorithm::kRv;
    rv_best.rv_period = static_cast<int>(k);
    CaseConfig eca_best = S2Config(k);
    CaseConfig eca_worst = S2Config(k);
    eca_worst.order = Order::kWorst;

    PrintTableRow(
        {Num(k), Num(analytic::IoRvBestS2(p, k)),
         Num(analytic::IoRecomputeS2Operational(p)), Num(MeasureIo(rv_best)),
         Num(analytic::IoRvWorstS2(p, k)), Num(analytic::IoEcaBestS2(p, k)),
         Num(k * analytic::IoTwoUnboundTermS2Operational(p)),
         Num(MeasureIo(eca_best)), Num(analytic::IoEcaWorstS2(p, k)),
         Num(MeasureIo(eca_worst))});
  }
  std::cout << "(crossover: ECAworst vs RVbest between k=5 and k=8)\n";
}

namespace {

void BM_Fig65(benchmark::State& state) {
  CaseConfig config = S2Config(state.range(0));
  config.order = state.range(1) != 0 ? Order::kWorst : Order::kBest;
  int64_t io = 0;
  for (auto _ : state) {
    Result<CaseResult> r = RunCase(config);
    if (r.ok()) {
      io = r->io;
    }
    benchmark::DoNotOptimize(io);
  }
  state.counters["IO"] = static_cast<double>(io);
}
BENCHMARK(BM_Fig65)
    ->ArgNames({"k", "worst"})
    ->Args({3, 0})
    ->Args({3, 1})
    ->Args({11, 0})
    ->Args({11, 1});

}  // namespace
}  // namespace wvm::bench

int main(int argc, char** argv) {
  wvm::bench::PrintFigure();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
