// The exact three-update sample scenario of Sections 6.2/6.3 (Example 6:
// one insert into each of r1, r2, r3): every closed form the paper derives
// for it, next to the measured value.
//
// This is the tightest paper-vs-implementation comparison in the suite:
// with a pristine C=100 source the Scenario 1 plans are reproduced I/O for
// I/O (15 best, 18 worst), and Scenario 2 differs from the paper's
// leading-term derivation only by the documented outer-block reads.
#include <benchmark/benchmark.h>

#include <iostream>

#include "harness.h"

namespace wvm::bench {
namespace {

CaseConfig ThreeUpdateConfig(PhysicalScenario scenario, Order order,
                             Algorithm algorithm = Algorithm::kEca,
                             int rv_period = 1) {
  CaseConfig config;
  config.algorithm = algorithm;
  config.k = 3;
  config.stream = Stream::kCorrelatedInserts;
  config.order = order;
  config.scenario = scenario;
  config.rv_period = rv_period;
  return config;
}

CaseResult Must(const CaseConfig& config) {
  Result<CaseResult> r = RunCase(config);
  if (!r.ok()) {
    std::cerr << "run failed: " << r.status() << "\n";
    return CaseResult{};
  }
  return *r;
}

}  // namespace

void PrintFigure() {
  analytic::Params p;
  PrintTableHeader("Three-update scenario (U1->r1, U2->r2, U3->r3), C=100",
                   {"metric", "paper", "measured"});

  // Bytes.
  CaseResult eca_best =
      Must(ThreeUpdateConfig(PhysicalScenario::kIndexedMemory, Order::kBest));
  CaseResult eca_worst =
      Must(ThreeUpdateConfig(PhysicalScenario::kIndexedMemory, Order::kWorst));
  CaseResult rv_once =
      Must(ThreeUpdateConfig(PhysicalScenario::kIndexedMemory, Order::kBest,
                             Algorithm::kRv, /*rv_period=*/3));
  CaseResult rv_every =
      Must(ThreeUpdateConfig(PhysicalScenario::kIndexedMemory, Order::kBest,
                             Algorithm::kRv, /*rv_period=*/1));
  PrintTableRow({"B ECAbest", Num(analytic::BytesEcaBest3(p)),
                 Num(eca_best.bytes)});
  PrintTableRow({"B ECAworst", Num(analytic::BytesEcaWorst3(p)),
                 Num(eca_worst.bytes)});
  PrintTableRow({"B RVbest", Num(analytic::BytesRvBest3(p)),
                 Num(rv_once.bytes)});
  PrintTableRow({"B RVworst", Num(analytic::BytesRvWorst3(p)),
                 Num(rv_every.bytes)});

  // Scenario 1 I/O.
  PrintTableRow({"IO1 ECAbest", Num(analytic::IoEcaBest3S1(p)),
                 Num(eca_best.io)});
  PrintTableRow({"IO1 ECAworst", Num(analytic::IoEcaWorst3S1(p)),
                 Num(eca_worst.io)});
  PrintTableRow({"IO1 RVbest", Num(analytic::IoRvBest3S1(p)),
                 Num(rv_once.io)});
  PrintTableRow({"IO1 RVworst", Num(analytic::IoRvWorst3S1(p)),
                 Num(rv_every.io)});

  // Scenario 2 I/O (C=94 keeps I=5, I'=3 through the three inserts).
  auto s2 = [&](Order order, Algorithm algorithm, int rv_period) {
    CaseConfig config =
        ThreeUpdateConfig(PhysicalScenario::kNestedLoopLimited, order,
                          algorithm, rv_period);
    config.cardinality = 94;
    return Must(config);
  };
  CaseResult s2_eca_best = s2(Order::kBest, Algorithm::kEca, 1);
  CaseResult s2_eca_worst = s2(Order::kWorst, Algorithm::kEca, 1);
  CaseResult s2_rv_once = s2(Order::kBest, Algorithm::kRv, 3);
  PrintTableRow({"IO2 ECAbest", Num(analytic::IoEcaBest3S2(p)),
                 Num(s2_eca_best.io)});
  PrintTableRow({"IO2 ECAworst", Num(analytic::IoEcaWorst3S2(p)),
                 Num(s2_eca_worst.io)});
  PrintTableRow({"IO2 RVbest", Num(analytic::IoRvBest3S2(p)),
                 Num(s2_rv_once.io)});
  std::cout << "(IO2 measured = paper + outer-block reads: recompute "
            << Num(analytic::IoRecomputeS2Operational(p) -
                   analytic::IoRvBest3S2(p))
            << " extra, each 2-unbound term +I)\n";

  // Messages.
  PrintTableRow({"M ECA", Num(analytic::MessagesEca(3)),
                 Num(eca_best.messages)});
  PrintTableRow({"M RV(s=3)", Num(analytic::MessagesRv(3, 3)),
                 Num(rv_once.messages)});
}

namespace {

void BM_ThreeUpdates(benchmark::State& state) {
  CaseConfig config = ThreeUpdateConfig(
      state.range(0) == 0 ? PhysicalScenario::kIndexedMemory
                          : PhysicalScenario::kNestedLoopLimited,
      Order::kWorst);
  if (state.range(0) != 0) {
    config.cardinality = 94;
  }
  for (auto _ : state) {
    Result<CaseResult> r = RunCase(config);
    benchmark::DoNotOptimize(r);
    if (r.ok()) {
      state.counters["IO"] = static_cast<double>(r->io);
      state.counters["B"] = static_cast<double>(r->bytes);
    }
  }
}
BENCHMARK(BM_ThreeUpdates)->ArgNames({"scenario2"})->Arg(0)->Arg(1);

}  // namespace
}  // namespace wvm::bench

int main(int argc, char** argv) {
  wvm::bench::PrintFigure();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
