// Shared maintenance for multi-view warehouses, quantified: N children
// maintain N views over one source through one warehouse, and a fraction
// `overlap` of them are structural twins of the hot keyed view. The sweep
// compares three source/warehouse configurations per (N, overlap) cell:
//
//   independent  every child sends its own compensating queries (the
//                pre-multi-view baseline: M and B grow linearly in N);
//   dedup        cross-view delta-query dedup folds the structurally
//                identical terms of one update event into one shared
//                query and fans the answers back per child;
//   shared       dedup plus the source term cache with auxiliary-view
//                promotion (hot shared subexpressions become first-class
//                incrementally-patched views), the full shared-maintenance
//                stack.
//
// The update stream is hot-tuple churn, so term shapes also repeat ACROSS
// update events — the regime where promotion pays. Every run is checked
// child-by-child against a from-scratch evaluation of its view, so the
// table only reports savings on runs that converged to the truth.
#include <benchmark/benchmark.h>

#include <cmath>
#include <iostream>
#include <memory>
#include <vector>

#include "common/strings.h"
#include "core/eca.h"
#include "core/multi_view.h"
#include "harness.h"
#include "query/evaluator.h"
#include "relational/predicate.h"
#include "sim/policies.h"
#include "sim/simulation.h"
#include "workload/generator.h"

namespace wvm::bench {
namespace {

struct MultiViewResult {
  int64_t messages = 0;
  int64_t bytes = 0;
  int64_t page_reads = 0;
  int64_t deduped_terms = 0;
  int64_t promotions = 0;
  int64_t aux_hits = 0;
  bool answers_match = false;
};

// Builds the N views: `hot` structural twins of the keyed view (distinct
// ViewDefinition objects, identical structure — the cross-view sharing
// target), and N-hot structurally unique views distinguished by a
// never-false selection constant (W != 10^6+i keeps the answer identical
// while giving each view its own structure key, so nothing dedups).
Result<std::vector<ViewDefinitionPtr>> MakeOverlappingViews(
    const Workload& workload, int num_views, double overlap) {
  const int hot = static_cast<int>(std::lround(num_views * overlap));
  std::vector<ViewDefinitionPtr> views;
  views.reserve(num_views);
  for (int i = 0; i < num_views; ++i) {
    if (i < hot) {
      WVM_ASSIGN_OR_RETURN(
          ViewDefinitionPtr v,
          ViewDefinition::NaturalJoin(StrCat("H", i), workload.defs,
                                      {"W", "Y"}));
      views.push_back(std::move(v));
    } else {
      WVM_ASSIGN_OR_RETURN(
          ViewDefinitionPtr v,
          ViewDefinition::NaturalJoin(
              StrCat("U", i), workload.defs, {"W", "Y"},
              Predicate::Compare(Operand::Attr("W"), CompareOp::kNe,
                                 Operand::ConstInt(1000000 + i))));
      views.push_back(std::move(v));
    }
  }
  return views;
}

Result<MultiViewResult> RunMultiView(int num_views, double overlap,
                                     bool dedup,
                                     const TermCacheConfig& cache,
                                     uint64_t seed) {
  Random rng(seed);
  WVM_ASSIGN_OR_RETURN(Workload workload,
                       MakeKeyedWorkload({/*c=*/40, /*j=*/3}, &rng));
  WVM_ASSIGN_OR_RETURN(std::vector<ViewDefinitionPtr> views,
                       MakeOverlappingViews(workload, num_views, overlap));
  WVM_ASSIGN_OR_RETURN(
      std::vector<Update> updates,
      MakeChurnUpdates(workload, /*k=*/12, /*pool_size=*/2, &rng));

  std::vector<std::unique_ptr<ViewMaintainer>> children;
  children.reserve(views.size());
  for (const ViewDefinitionPtr& v : views) {
    children.push_back(std::make_unique<Eca>(v));
  }
  MultiViewOptions mv_options;
  mv_options.dedup = dedup;
  auto multi_owner =
      std::make_unique<MultiViewWarehouse>(std::move(children), mv_options);
  MultiViewWarehouse* multi = multi_owner.get();

  SimulationOptions options;
  options.bytes_per_tuple = 4;
  options.term_cache = cache;
  options.indexes = workload.scenario1_indexes;
  WVM_ASSIGN_OR_RETURN(
      std::unique_ptr<Simulation> sim,
      Simulation::Create(workload.initial, views[0], std::move(multi_owner),
                         options));
  sim->SetUpdateScript(std::move(updates));
  // Random interleaving: updates and answers overlap, so compensating
  // terms repeat shapes ACROSS query events (the cross-event repetition
  // promotion feeds on), unlike the worst-case order's single batch.
  RandomPolicy policy(seed);
  WVM_RETURN_IF_ERROR(RunToQuiescence(sim.get(), &policy));

  MultiViewResult result;
  result.messages = sim->meter().messages();
  result.bytes = sim->meter().bytes_transferred();
  result.page_reads = sim->io_stats().page_reads;
  result.deduped_terms = sim->meter().deduped_query_terms();
  result.promotions = sim->io_stats().term_cache_promotions;
  result.aux_hits = sim->io_stats().term_cache_aux_hits;
  result.answers_match = multi->IsQuiescent();
  for (size_t i = 0; i < views.size(); ++i) {
    WVM_ASSIGN_OR_RETURN(Relation expected,
                         EvaluateView(views[i], sim->source_catalog()));
    result.answers_match =
        result.answers_match && multi->child(i).view_contents() == expected;
  }
  return result;
}

TermCacheConfig SharedCache() {
  TermCacheConfig cache;
  cache.enabled = true;
  cache.capacity = 256;
  cache.promote = true;
  cache.promote_min_hits = 2;
  // With dedup upstream the source sees each shared term once per event
  // (one consumer view), so cross-view popularity shows up as HITS, not
  // as distinct consumers.
  cache.promote_min_views = 1;
  cache.demote_after_updates = 64;
  return cache;
}

void PrintFigure(JsonReport* report) {
  PrintTableHeader(
      "Multi-view shared maintenance (churn k=12, random order)",
      {"N/overlap", "config", "msgs", "bytes", "reads", "dedup", "promo",
       "ok"});
  bool all_ok = true;
  for (int num_views : {20, 50, 100}) {
    for (double overlap : {0.0, 0.5, 0.75, 1.0}) {
      struct Cfg {
        const char* name;
        bool dedup;
        TermCacheConfig cache;
      };
      const std::vector<Cfg> configs = {
          {"independent", false, TermCacheConfig()},
          {"dedup", true, TermCacheConfig()},
          {"shared", true, SharedCache()},
      };
      MultiViewResult baseline;
      for (const Cfg& cfg : configs) {
        Result<MultiViewResult> r =
            RunMultiView(num_views, overlap, cfg.dedup, cfg.cache, /*seed=*/17);
        if (!r.ok()) {
          std::cerr << "run failed: " << r.status() << "\n";
          all_ok = false;
          continue;
        }
        all_ok = all_ok && r->answers_match;
        const std::string cell =
            StrCat(num_views, "/", Num(overlap * 100), "%");
        if (std::string(cfg.name) == "independent") {
          baseline = *r;
        }
        PrintTableRow({cell, cfg.name, Num(static_cast<double>(r->messages)),
                       Num(static_cast<double>(r->bytes)),
                       Num(static_cast<double>(r->page_reads)),
                       Num(static_cast<double>(r->deduped_terms)),
                       Num(static_cast<double>(r->promotions)),
                       r->answers_match ? "yes" : "NO"});
        report->Begin(StrCat("multi_view/n", num_views, "_ov",
                             static_cast<int>(overlap * 100), "/", cfg.name));
        report->Metric("views", static_cast<int64_t>(num_views));
        report->Metric("overlap", overlap);
        report->Metric("messages", r->messages);
        report->Metric("bytes", r->bytes);
        report->Metric("page_reads", r->page_reads);
        report->Metric("deduped_terms", r->deduped_terms);
        report->Metric("promotions", r->promotions);
        report->Metric("aux_hits", r->aux_hits);
        report->Metric("answers_match",
                       static_cast<int64_t>(r->answers_match ? 1 : 0));
        if (std::string(cfg.name) != "independent") {
          report->Metric("message_reduction",
                         r->messages > 0 ? static_cast<double>(
                                               baseline.messages) /
                                               static_cast<double>(r->messages)
                                         : 0.0);
          report->Metric("bytes_reduction",
                         r->bytes > 0 ? static_cast<double>(baseline.bytes) /
                                            static_cast<double>(r->bytes)
                                      : 0.0);
          report->Metric(
              "read_reduction",
              r->page_reads > 0
                  ? static_cast<double>(baseline.page_reads) /
                        static_cast<double>(r->page_reads)
                  : 0.0);
        }
      }
    }
  }
  std::cout << "('dedup' counts the per-event query terms folded into "
               "shared terms; 'promo'\n counts term-cache entries promoted "
               "to auxiliary views; 'ok' checks every\n child's final view "
               "against a from-scratch evaluation)\n";
  if (!all_ok) {
    std::cerr << "warning: at least one cell failed or diverged\n";
  }
}

void BM_MultiView(benchmark::State& state) {
  const int num_views = static_cast<int>(state.range(0));
  const bool dedup = state.range(1) != 0;
  for (auto _ : state) {
    Result<MultiViewResult> r = RunMultiView(
        num_views, /*overlap=*/0.5, dedup,
        dedup ? SharedCache() : TermCacheConfig(), /*seed=*/17);
    if (!r.ok()) {
      state.SkipWithError("run failed");
      return;
    }
    benchmark::DoNotOptimize(r->bytes);
    state.counters["bytes"] = static_cast<double>(r->bytes);
    state.counters["reads"] = static_cast<double>(r->page_reads);
  }
}
BENCHMARK(BM_MultiView)
    ->ArgNames({"views", "shared"})
    ->Args({20, 0})
    ->Args({20, 1})
    ->Args({50, 0})
    ->Args({50, 1});

}  // namespace
}  // namespace wvm::bench

int main(int argc, char** argv) {
  wvm::bench::JsonReport report;
  wvm::bench::PrintFigure(&report);
  report.WriteFileFromEnv();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
