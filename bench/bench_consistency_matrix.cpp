// The correctness-level matrix of Section 3.1: what each maintenance
// strategy guarantees, measured over seeded random interleavings of a mixed
// insert/delete stream, together with what it costs (messages, bytes, IO).
//
// Expected picture (the paper's claims):
//   basic         — violates even weak consistency (the anomaly);
//   eca/eca-local — strongly consistent, never complete in general;
//   eca-key       — strongly consistent on keyed views, deletes are free;
//   lca, sc       — complete (every source state visible at the warehouse);
//   rv            — strongly consistent when s divides k, at recompute cost;
//   ablations     — eca-nocomp re-introduces the anomaly, eca-nocollect
//                   keeps convergence but gives up consistency.
#include <benchmark/benchmark.h>

#include <iostream>

#include "harness.h"
#include "common/strings.h"

namespace wvm::bench {
namespace {

struct MatrixRow {
  Algorithm algorithm;
  int64_t runs = 0;
  int64_t convergent = 0;
  int64_t strong = 0;
  int64_t complete = 0;
  int64_t messages = 0;
  int64_t bytes = 0;
  int64_t io = 0;
};

MatrixRow RunSweep(Algorithm algorithm, int seeds) {
  MatrixRow row;
  row.algorithm = algorithm;
  for (int seed = 1; seed <= seeds; ++seed) {
    CaseConfig config;
    config.algorithm = algorithm;
    config.cardinality = 30;
    config.join_factor = 3;
    config.k = 12;
    config.stream = Stream::kMixed;
    config.order = Order::kRandom;
    config.rv_period = 4;  // divides k: RV stays convergent
    config.seed = static_cast<uint64_t>(seed);
    Result<CaseResult> r = RunCase(config);
    if (!r.ok()) {
      std::cerr << AlgorithmName(algorithm) << ": " << r.status() << "\n";
      continue;
    }
    ++row.runs;
    row.convergent += r->convergent ? 1 : 0;
    row.strong += r->strongly_consistent ? 1 : 0;
    row.complete += r->complete ? 1 : 0;
    row.messages += r->messages;
    row.bytes += r->bytes;
    row.io += r->io;
  }
  return row;
}

}  // namespace

void PrintFigure() {
  constexpr int kSeeds = 40;
  PrintTableHeader(
      "Correctness levels x cost over 40 random interleavings "
      "(k=12 mixed updates, C=30)",
      {"algorithm", "convergent", "strong", "complete", "avg M", "avg B",
       "avg IO"});
  for (Algorithm algorithm :
       {Algorithm::kBasic, Algorithm::kEca, Algorithm::kEcaNoCompensation,
        Algorithm::kEcaNoCollect, Algorithm::kEcaLocal, Algorithm::kLca,
        Algorithm::kRv, Algorithm::kSc}) {
    MatrixRow row = RunSweep(algorithm, kSeeds);
    if (row.runs == 0) {
      continue;
    }
    auto pct = [&](int64_t n) {
      return wvm::StrCat(Num(100.0 * static_cast<double>(n) / row.runs), "%");
    };
    PrintTableRow({AlgorithmName(algorithm), pct(row.convergent),
                   pct(row.strong), pct(row.complete),
                   Num(static_cast<double>(row.messages) / row.runs),
                   Num(static_cast<double>(row.bytes) / row.runs),
                   Num(static_cast<double>(row.io) / row.runs)});
  }
  std::cout << "(eca-key is benchmarked on keyed views in its test suite; "
               "rv uses s=4 so its final state is fresh)\n";
}

namespace {

void BM_ConsistencySweep(benchmark::State& state) {
  const Algorithm algorithm = static_cast<Algorithm>(state.range(0));
  for (auto _ : state) {
    MatrixRow row = RunSweep(algorithm, 5);
    benchmark::DoNotOptimize(row);
    state.counters["strong_pct"] =
        100.0 * static_cast<double>(row.strong) / row.runs;
  }
}
BENCHMARK(BM_ConsistencySweep)
    ->ArgNames({"algorithm"})
    ->Arg(static_cast<int>(Algorithm::kBasic))
    ->Arg(static_cast<int>(Algorithm::kEca))
    ->Arg(static_cast<int>(Algorithm::kLca))
    ->Arg(static_cast<int>(Algorithm::kSc));

}  // namespace
}  // namespace wvm::bench

int main(int argc, char** argv) {
  wvm::bench::PrintFigure();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
