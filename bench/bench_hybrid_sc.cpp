// Section 6 defers SC's evaluation: "storing copies of base relations (SC)
// can be seen as an enhancement to any of our algorithms, requiring an
// 'orthogonal' performance comparison (based on warehouse storage costs,
// etc.)". This benchmark runs that comparison: ECA with progressively more
// base relations replicated at the warehouse, trading warehouse storage
// (replica rows) against maintenance traffic (messages, bytes, source IO).
#include <benchmark/benchmark.h>

#include <iostream>
#include <set>

#include "common/strings.h"
#include "consistency/checker.h"
#include "core/eca_sc.h"
#include "harness.h"
#include "sim/policies.h"
#include "sim/simulation.h"
#include "workload/generator.h"

namespace wvm::bench {
namespace {

struct HybridResult {
  int64_t messages = 0;
  int64_t bytes = 0;
  int64_t io = 0;
  int64_t replica_rows = 0;
  bool strong = false;
};

HybridResult RunHybrid(const std::set<std::string>& replicated,
                       uint64_t seed) {
  Random rng(seed);
  Result<Workload> w = MakeExample6Workload({100, 4}, &rng);
  if (!w.ok()) {
    std::cerr << w.status() << "\n";
    return HybridResult{};
  }
  Result<std::vector<Update>> updates = MakeMixedUpdates(*w, 30, 0.3, &rng);
  if (!updates.ok()) {
    std::cerr << updates.status() << "\n";
    return HybridResult{};
  }

  auto maintainer = std::make_unique<EcaSc>(w->view, replicated);
  EcaSc* hybrid = maintainer.get();
  SimulationOptions options;
  options.bytes_per_tuple = 4;
  options.indexes = w->scenario1_indexes;
  Result<std::unique_ptr<Simulation>> sim = Simulation::Create(
      w->initial, w->view, std::move(maintainer), options);
  if (!sim.ok()) {
    std::cerr << sim.status() << "\n";
    return HybridResult{};
  }
  (*sim)->SetUpdateScript(*updates);
  RandomPolicy policy(seed * 7);
  Status run = RunToQuiescence(sim->get(), &policy);
  if (!run.ok()) {
    std::cerr << run << "\n";
    return HybridResult{};
  }

  HybridResult result;
  result.messages = (*sim)->meter().messages();
  result.bytes = (*sim)->meter().bytes_transferred();
  result.io = (*sim)->io_stats().page_reads;
  result.replica_rows = hybrid->ReplicaTupleCount();
  result.strong =
      CheckConsistency((*sim)->state_log()).strongly_consistent;
  return result;
}

}  // namespace

void PrintFigure() {
  PrintTableHeader(
      "SC as an enhancement to ECA: storage vs traffic "
      "(C=100, k=30 mixed updates)",
      {"replicated", "M", "B", "IO", "replica", "strong"});
  struct Row {
    const char* label;
    std::set<std::string> replicated;
  } rows[] = {
      {"none (ECA)", {}},
      {"r3", {"r3"}},
      {"r2+r3", {"r2", "r3"}},
      {"all (SC)", {"r1", "r2", "r3"}},
  };
  for (const Row& row : rows) {
    HybridResult r = RunHybrid(row.replicated, 17);
    PrintTableRow({row.label, Num(r.messages), Num(r.bytes), Num(r.io),
                   Num(r.replica_rows), r.strong ? "yes" : "NO"});
  }
  std::cout << "(each replicated relation converts its updates' round "
               "trips into local work; full\n replication is SC: zero "
               "traffic for ~3x the warehouse storage)\n";
}

namespace {

void BM_HybridSc(benchmark::State& state) {
  const std::set<std::string> choices[] = {
      {}, {"r3"}, {"r2", "r3"}, {"r1", "r2", "r3"}};
  const std::set<std::string>& replicated = choices[state.range(0)];
  for (auto _ : state) {
    HybridResult r = RunHybrid(replicated, 17);
    benchmark::DoNotOptimize(r);
    state.counters["M"] = static_cast<double>(r.messages);
    state.counters["replica"] = static_cast<double>(r.replica_rows);
  }
}
BENCHMARK(BM_HybridSc)->ArgNames({"replicas"})->Arg(0)->Arg(1)->Arg(2)->Arg(3);

}  // namespace
}  // namespace wvm::bench

int main(int argc, char** argv) {
  wvm::bench::PrintFigure();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
