// What the replicated warehouse tier buys and costs. Two tables:
//
// 1. Read throughput vs group size N, under data-plane drop rates 0, 0.05
//    and 0.15. The replica group is brought to convergence through the
//    sequenced broadcast (reliable transport riding out the configured
//    faults), then hammered by concurrent reader threads through the
//    ReadRouter. Each replica serializes its own readers (ServeRead holds
//    the replica's serve lock and fingerprints the whole view), so
//    aggregate reads/sec should scale with N — that scaling is the entire
//    point of the tier, and the drop rate should barely dent it, because
//    faults tax the maintenance plane, not the serving plane.
//
// 2. Staleness lag per read policy, measured DURING maintenance (reads
//    interleaved with the update schedule by a seeded random policy):
//    read-your-writes refuses while the reading client has unsettled
//    writes and otherwise serves from its settle floor; bounded staleness
//    trades refusals for lag up to the configured bound.
#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <iostream>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/strings.h"
#include "harness.h"
#include "replication/replicated_simulation.h"
#include "workload/generator.h"

namespace wvm::bench {
namespace {

constexpr int kReplicaCounts[] = {1, 2, 4, 8};
constexpr double kDropRates[] = {0.0, 0.05, 0.15};
constexpr int kUpdates = 10;
constexpr int kReaderThreads = 8;
constexpr int kHammerReads = 2000;
/// Simulated per-read service time (see HammerReads).
constexpr std::chrono::microseconds kServiceTime{50};

std::string DropLabel(double drop) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%.2f", drop);
  return buf;
}

FaultConfig MakeFault(double drop, uint64_t seed) {
  FaultConfig fault;
  fault.enabled = true;
  fault.reliable = true;
  fault.drop_rate = drop;
  fault.duplicate_rate = drop / 2;
  fault.reorder_rate = drop;
  fault.max_delay_ticks = 2;
  fault.retransmit_timeout_ticks = 6;
  fault.seed = seed * 977 + 13;
  return fault;
}

struct Fixture {
  Workload workload;
  std::unique_ptr<ReplicatedSimulation> sim;
};

Result<Fixture> MakeConverged(int num_replicas, double drop,
                              const ReplicationOptions& rep_in,
                              uint64_t seed) {
  Fixture f;
  Random rng(seed);
  WVM_ASSIGN_OR_RETURN(f.workload,
                       MakeExample6Workload(Example6Config{40, 3}, &rng));
  WVM_ASSIGN_OR_RETURN(std::vector<Update> updates,
                       MakeRoundRobinInserts(f.workload, kUpdates, &rng));
  SimulationOptions sim_options;
  sim_options.fault = MakeFault(drop, seed);
  ReplicationOptions rep = rep_in;
  rep.num_replicas = num_replicas;
  WVM_ASSIGN_OR_RETURN(
      f.sim, ReplicatedSimulation::Create(f.workload.initial, f.workload.view,
                                          Algorithm::kEca, sim_options, rep));
  f.sim->SetUpdateScript(std::move(updates));
  RandomReplicatedPolicy policy(seed);
  WVM_RETURN_IF_ERROR(RunReplicatedToQuiescence(f.sim.get(), &policy));
  ReplicaConvergenceReport report = f.sim->ConvergenceNow();
  if (!report.converged) {
    return Status::Internal(StrCat("group failed to converge: ",
                                   report.ToString()));
  }
  return f;
}

/// Hammers the converged group with kHammerReads reads from kReaderThreads
/// threads. The router is shared mutable state, so routing runs under one
/// mutex — cheap — while the serves it hands out run concurrently, each
/// serializing on its replica's serve lock for the full per-read service
/// time: the view fingerprint (real CPU) plus kServiceTime of blocking
/// latency standing in for the result-page materialization and transfer
/// the simulation does not execute. The blocking component is what makes
/// the measurement about CAPACITY rather than this box's core count —
/// replicas wait out their service times in parallel, so aggregate
/// reads/sec grows with N until the reader pool is the limit, exactly the
/// queueing behavior of an I/O-bound serving tier. Returns reads/second.
double HammerReads(ReplicatedSimulation* sim) {
  const uint64_t head = sim->sequencer().head_lsn();
  std::vector<ServingProbe> probes;
  for (int r = 0; r < sim->num_replicas(); ++r) {
    probes.push_back(ServingProbe{sim->replica(r).applied_lsn(), true});
  }
  std::vector<std::unique_ptr<std::mutex>> serve_locks;
  for (int r = 0; r < sim->num_replicas(); ++r) {
    serve_locks.push_back(std::make_unique<std::mutex>());
  }
  std::mutex router_mutex;
  std::atomic<int> next_read{0};
  std::atomic<int64_t> served{0};
  auto reader = [&](int thread_id) {
    for (;;) {
      const int i = next_read.fetch_add(1);
      if (i >= kHammerReads) {
        return;
      }
      ReadResult result;
      {
        std::lock_guard<std::mutex> lock(router_mutex);
        result = sim->router().Route(thread_id % 2, head, probes);
      }
      if (result.served) {
        std::lock_guard<std::mutex> lock(*serve_locks[result.replica]);
        benchmark::DoNotOptimize(sim->replica(result.replica).ServeRead());
        std::this_thread::sleep_for(kServiceTime);
        served.fetch_add(1);
      }
    }
  };
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  for (int t = 0; t < kReaderThreads; ++t) {
    threads.emplace_back(reader, t);
  }
  for (std::thread& t : threads) {
    t.join();
  }
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  // Every read must have been served: the group is converged and every
  // probe is at the head, so a refusal would be a routing bug.
  if (served.load() != kHammerReads) {
    std::cerr << "only " << served.load() << "/" << kHammerReads
              << " reads served\n";
  }
  return seconds > 0 ? static_cast<double>(kHammerReads) / seconds : 0;
}

/// One untimed warm-up pass (allocator, page faults, thread pool) followed
/// by best-of-3 timed passes — this box is small, so a single cold pass
/// would dominate the curve with startup noise instead of serve capacity.
double HammerReadsStable(ReplicatedSimulation* sim) {
  HammerReads(sim);
  double best = 0;
  for (int pass = 0; pass < 3; ++pass) {
    best = std::max(best, HammerReads(sim));
  }
  return best;
}

}  // namespace

void PrintFigure(JsonReport* json) {
  PrintTableHeader(
      StrCat("Read throughput vs replica group size (", kReaderThreads,
             " reader threads, ", kHammerReads,
             " reads over a converged ECA group, k=", kUpdates, " updates)"),
      {"N", "drop", "reads/sec", "speedup vs N=1", "evictions", "head LSN"});
  for (double drop : kDropRates) {
    double base = 0;
    for (int n : kReplicaCounts) {
      ReplicationOptions rep;
      rep.read_policy = ReadPolicy::kBoundedStaleness;
      rep.staleness_bound = 1000;
      rep.heartbeat_rounds = 6;
      Result<Fixture> f = MakeConverged(n, drop, rep, 17);
      if (!f.ok()) {
        std::cerr << "N=" << n << " drop=" << drop << ": " << f.status()
                  << "\n";
        continue;
      }
      const double rps = HammerReadsStable(f->sim.get());
      if (n == 1) {
        base = rps;
      }
      const double speedup = base > 0 ? rps / base : 0;
      PrintTableRow({Num(n), DropLabel(drop), Num(rps), Num(speedup),
                     Num(f->sim->monitor().evictions()),
                     Num(static_cast<double>(f->sim->sequencer().head_lsn()))});
      json->Begin(
          StrCat("replication/read_throughput/N=", n, "/drop=",
                 DropLabel(drop)));
      json->Metric("replicas", static_cast<int64_t>(n));
      json->Metric("drop_rate", drop);
      json->Metric("reads_per_sec", rps);
      json->Metric("speedup_vs_1", speedup);
      json->Metric("evictions",
                   static_cast<int64_t>(f->sim->monitor().evictions()));
      json->Metric("heartbeat_messages",
                   f->sim->group_meter().heartbeat_messages());
      json->Metric("head_lsn",
                   static_cast<int64_t>(f->sim->sequencer().head_lsn()));
    }
  }
  std::cout << "(serves serialize per replica, so reads/sec should grow "
               "with N; the data-plane drop\n rate taxes maintenance — "
               "retransmits, delayed convergence — not serving capacity)\n";

  struct PolicyCell {
    const char* label;
    ReadPolicy policy;
    uint64_t bound;
  };
  const PolicyCell cells[] = {
      {"read-your-writes", ReadPolicy::kReadYourWrites, 0},
      {"bounded(2)", ReadPolicy::kBoundedStaleness, 2},
      {"bounded(8)", ReadPolicy::kBoundedStaleness, 8},
  };
  PrintTableHeader(
      "Staleness lag per read policy (N=4, drop 0.10, 60 reads interleaved "
      "with maintenance, avg of 5 schedules)",
      {"policy", "served", "refused", "max lag", "mean lag"});
  for (const PolicyCell& cell : cells) {
    int64_t served = 0;
    int64_t refused = 0;
    uint64_t max_lag = 0;
    int64_t total_lag = 0;
    int runs = 0;
    for (uint64_t seed = 1; seed <= 5; ++seed) {
      ReplicationOptions rep;
      rep.read_policy = cell.policy;
      rep.staleness_bound = cell.bound;
      rep.reads = 60;
      rep.heartbeat_rounds = 6;
      Result<Fixture> f = MakeConverged(4, 0.10, rep, seed);
      if (!f.ok()) {
        std::cerr << cell.label << " seed=" << seed << ": " << f.status()
                  << "\n";
        continue;
      }
      const ReadStats& stats = f->sim->router().stats();
      served += stats.served;
      refused += stats.refused;
      max_lag = std::max(max_lag, stats.max_lag);
      total_lag += stats.total_lag;
      ++runs;
    }
    if (runs == 0) {
      continue;
    }
    const double mean_lag =
        served > 0 ? static_cast<double>(total_lag) /
                         static_cast<double>(served)
                   : 0;
    PrintTableRow({cell.label, Num(static_cast<double>(served) / runs),
                   Num(static_cast<double>(refused) / runs),
                   Num(static_cast<double>(max_lag)), Num(mean_lag)});
    json->Begin(StrCat("replication/read_policy/", cell.label));
    json->Metric("served", served);
    json->Metric("refused", refused);
    json->Metric("max_lag", static_cast<int64_t>(max_lag));
    json->Metric("mean_lag", mean_lag);
  }
  std::cout << "(read-your-writes buys 'never miss my own update' with "
               "refusals while writes are\n unsettled; bounded staleness "
               "serves more but admits lag up to the bound)\n";
}

namespace {

void BM_ReplicatedReads(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  ReplicationOptions rep;
  rep.read_policy = ReadPolicy::kBoundedStaleness;
  rep.staleness_bound = 1000;
  Result<Fixture> f = MakeConverged(n, 0.0, rep, 17);
  if (!f.ok()) {
    state.SkipWithError(f.status().ToString().c_str());
    return;
  }
  for (auto _ : state) {
    const double rps = HammerReads(f->sim.get());
    state.counters["reads_per_sec"] = rps;
  }
}
BENCHMARK(BM_ReplicatedReads)->ArgNames({"replicas"})->Arg(1)->Arg(4);

}  // namespace
}  // namespace wvm::bench

int main(int argc, char** argv) {
  wvm::bench::JsonReport json;
  wvm::bench::PrintFigure(&json);
  json.WriteFileFromEnv();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
