// Section 6.1: number of messages M between source and warehouse.
//
// M_RV = 2*ceil(k/s) (one query + one answer per recomputation), M_ECA = 2k
// (one round trip per update). Update notifications are identical in both
// and excluded, as in the paper. The measured column is exact: message
// counting has no stochastic component.
#include <benchmark/benchmark.h>

#include <iostream>

#include "harness.h"

namespace wvm::bench {
namespace {

int64_t MeasureMessages(Algorithm algorithm, int64_t k, int s) {
  CaseConfig config;
  config.algorithm = algorithm;
  config.k = k;
  config.rv_period = s;
  config.order = Order::kWorst;  // message counts are order-independent
  Result<CaseResult> r = RunCase(config);
  if (!r.ok()) {
    std::cerr << "run failed: " << r.status() << "\n";
    return -1;
  }
  return r->messages;
}

}  // namespace

void PrintFigure() {
  PrintTableHeader(
      "Section 6.1: messages M — paper model vs measured",
      {"k", "s", "M_RV", "M_RV(m)", "M_ECA", "M_ECA(m)"});
  struct Row {
    int64_t k;
    int s;
  } rows[] = {{1, 1},  {6, 1},  {6, 3},  {6, 6},
              {30, 1}, {30, 5}, {30, 30}, {120, 120}};
  for (const Row& row : rows) {
    PrintTableRow({Num(row.k), Num(row.s),
                   Num(analytic::MessagesRv(row.k, row.s)),
                   Num(MeasureMessages(Algorithm::kRv, row.k, row.s)),
                   Num(analytic::MessagesEca(row.k)),
                   Num(MeasureMessages(Algorithm::kEca, row.k, 1))});
  }
  std::cout << "(RV spans 2 to 2k messages depending on s; ECA always "
               "pays 2k but each answer is incremental)\n";
}

namespace {

void BM_Messages(benchmark::State& state) {
  const bool eca = state.range(1) == 0;
  int64_t messages = 0;
  for (auto _ : state) {
    messages = MeasureMessages(eca ? Algorithm::kEca : Algorithm::kRv,
                               state.range(0), 1);
    benchmark::DoNotOptimize(messages);
  }
  state.counters["M"] = static_cast<double>(messages);
}
BENCHMARK(BM_Messages)
    ->ArgNames({"k", "rv"})
    ->Args({30, 0})
    ->Args({30, 1});

}  // namespace
}  // namespace wvm::bench

int main(int argc, char** argv) {
  wvm::bench::PrintFigure();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
