#include "harness.h"

#include <chrono>
#include <cmath>
#include <cstdlib>
#include <cstdio>
#include <iostream>
#include <sstream>

#include "common/strings.h"
#include "consistency/checker.h"
#include "consistency/staleness.h"
#include "sim/policies.h"
#include "sim/simulation.h"
#include "workload/generator.h"

namespace wvm::bench {

Result<CaseResult> RunCase(const CaseConfig& config) {
  Random rng(config.seed);
  Workload workload;
  if (config.fk_star_workload) {
    FkStarConfig star;
    star.orders = config.cardinality;
    star.parts = std::max<int64_t>(4, config.cardinality / 4);
    star.suppliers = std::max<int64_t>(2, config.cardinality / 12);
    star.cold_parts = std::min(config.cold_parts, star.parts / 2);
    WVM_ASSIGN_OR_RETURN(workload, MakeFkStarWorkload(star, &rng));
  } else if (config.keyed_workload) {
    WVM_ASSIGN_OR_RETURN(
        workload,
        MakeKeyedWorkload({config.cardinality, config.join_factor}, &rng));
  } else {
    WVM_ASSIGN_OR_RETURN(
        workload,
        MakeExample6Workload({config.cardinality, config.join_factor}, &rng));
  }

  std::vector<Update> updates;
  if (config.fk_star_workload) {
    WVM_ASSIGN_OR_RETURN(updates,
                         MakeFkStarUpdates(workload, config.k, &rng));
  } else {
    switch (config.stream) {
    case Stream::kRoundRobinInserts: {
      WVM_ASSIGN_OR_RETURN(updates,
                           MakeRoundRobinInserts(workload, config.k, &rng));
      break;
    }
    case Stream::kCorrelatedInserts: {
      WVM_ASSIGN_OR_RETURN(updates,
                           MakeCorrelatedInserts(workload, config.k, &rng));
      break;
    }
    case Stream::kMixed: {
      WVM_ASSIGN_OR_RETURN(updates,
                           MakeMixedUpdates(workload, config.k, 0.35, &rng));
      break;
    }
    case Stream::kChurn: {
      WVM_ASSIGN_OR_RETURN(
          updates,
          MakeChurnUpdates(workload, config.k, config.churn_pool, &rng));
      break;
    }
    }
  }

  SimulationOptions options;
  options.bytes_per_tuple = 4;  // S of Table 1
  options.physical.scenario = config.scenario;
  options.physical.tuples_per_block = config.tuples_per_block;
  options.physical.cache_within_query = config.cache_within_query;
  options.physical.optimize_terms = config.optimize_terms;
  options.batch_size = config.batch_size;
  options.term_cache = config.term_cache;
  options.engine.parallel_answers = config.parallel_source_answers;
  options.fault = config.fault;
  if (config.scenario == PhysicalScenario::kIndexedMemory) {
    options.indexes = workload.scenario1_indexes;
  }

  MaintainerSpec spec;
  spec.algorithm = config.algorithm;
  spec.rv_period = config.rv_period;
  spec.self_maintain = config.self_maintain;
  WVM_ASSIGN_OR_RETURN(std::unique_ptr<ViewMaintainer> maintainer,
                       MakeMaintainer(spec, workload.view));
  WVM_ASSIGN_OR_RETURN(
      std::unique_ptr<Simulation> sim,
      Simulation::Create(workload.initial, workload.view,
                         std::move(maintainer), options));
  sim->SetUpdateScript(std::move(updates));

  const auto run_start = std::chrono::steady_clock::now();
  switch (config.order) {
    case Order::kBest: {
      BestCasePolicy policy;
      WVM_RETURN_IF_ERROR(RunToQuiescence(sim.get(), &policy));
      break;
    }
    case Order::kWorst: {
      WorstCasePolicy policy;
      WVM_RETURN_IF_ERROR(RunToQuiescence(sim.get(), &policy));
      break;
    }
    case Order::kRandom: {
      RandomPolicy policy(config.seed);
      WVM_RETURN_IF_ERROR(RunToQuiescence(sim.get(), &policy));
      break;
    }
  }
  const std::chrono::duration<double> run_elapsed =
      std::chrono::steady_clock::now() - run_start;

  ConsistencyReport report = CheckConsistency(sim->state_log());
  CaseResult result;
  result.messages = sim->meter().messages();
  result.notifications = sim->meter().notifications();
  result.bytes = sim->meter().bytes_transferred();
  result.io = sim->io_stats().page_reads;
  result.query_terms = sim->meter().query_terms();
  result.convergent = report.convergent;
  result.strongly_consistent = report.strongly_consistent;
  result.complete = report.complete;
  result.final_view_size =
      StrCat(sim->warehouse_view().TotalPositive(), " tuples");
  const TransportStats transport = sim->transport_stats();
  result.retransmitted_messages = sim->meter().retransmitted_messages();
  result.retransmitted_bytes = sim->meter().retransmitted_bytes();
  result.ack_messages = sim->meter().ack_messages();
  result.frames_dropped = transport.link.frames_dropped;
  StalenessReport staleness = MeasureStaleness(sim->state_log());
  result.staleness_coverage = staleness.coverage;
  result.staleness_mean_lag = staleness.mean_lag;
  result.term_cache_hits = sim->io_stats().term_cache_hits;
  result.term_cache_misses = sim->io_stats().term_cache_misses;
  result.term_cache_patches = sim->io_stats().term_cache_patches;
  result.term_cache_evictions = sim->io_stats().term_cache_evictions;
  result.term_cache_patch_reads = sim->io_stats().term_cache_patch_reads;
  result.wall_seconds = run_elapsed.count();
  result.query_messages = sim->meter().query_messages();
  if (const auto* sm =
          dynamic_cast<const SelfMaintainer*>(&sim->maintainer())) {
    result.local_updates = sm->local_updates();
    result.remote_updates = sm->remote_updates();
    result.constraint_empty_updates = sm->constraint_empty_updates();
    result.aux_rows = sm->aux_rows();
    const int64_t total = sm->local_updates() + sm->remote_updates();
    result.local_rate =
        total > 0 ? static_cast<double>(sm->local_updates()) / total : 0.0;
  }
  return result;
}

void PrintTableHeader(const std::string& title,
                      const std::vector<std::string>& columns) {
  std::cout << "\n== " << title << " ==\n";
  for (const std::string& c : columns) {
    std::printf("%14s", c.c_str());
  }
  std::printf("\n");
  for (size_t i = 0; i < columns.size(); ++i) {
    std::printf("%14s", "------------");
  }
  std::printf("\n");
}

void PrintTableRow(const std::vector<std::string>& cells) {
  for (const std::string& c : cells) {
    std::printf("%14s", c.c_str());
  }
  std::printf("\n");
}

std::string Num(double v) {
  std::ostringstream os;
  if (v == static_cast<int64_t>(v)) {
    os << static_cast<int64_t>(v);
  } else {
    os.precision(1);
    os << std::fixed << v;
  }
  return os.str();
}

namespace {

// JSON string escaping for the handful of characters record names can hold.
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        out += c;
    }
  }
  return out;
}

}  // namespace

void JsonReport::Begin(const std::string& name) {
  records_.push_back(Record{name, {}});
}

void JsonReport::Metric(const std::string& key, double value) {
  std::ostringstream os;
  os.precision(17);
  os << value;
  records_.back().metrics.emplace_back(key, os.str());
}

void JsonReport::Metric(const std::string& key, int64_t value) {
  records_.back().metrics.emplace_back(key, std::to_string(value));
}

std::string JsonReport::ToString() const {
  std::ostringstream os;
  os << "{\n  \"benchmarks\": [\n";
  for (size_t i = 0; i < records_.size(); ++i) {
    os << "    {\"name\": \"" << JsonEscape(records_[i].name) << "\"";
    for (const auto& [key, value] : records_[i].metrics) {
      os << ", \"" << JsonEscape(key) << "\": " << value;
    }
    os << "}" << (i + 1 < records_.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
  return os.str();
}

bool JsonReport::WriteFile(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return false;
  }
  const std::string body = ToString();
  const bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
  return std::fclose(f) == 0 && ok;
}

bool JsonReport::WriteFileFromEnv(const char* env_var) const {
  const char* path = std::getenv(env_var);
  if (path == nullptr || *path == '\0') {
    return false;
  }
  if (!WriteFile(path)) {
    std::cerr << "warning: could not write JSON report to " << path << "\n";
    return false;
  }
  return true;
}

}  // namespace wvm::bench
