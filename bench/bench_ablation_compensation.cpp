// Ablation of ECA's two mechanisms (Section 5.2):
//
//   * compensating queries — removing them (eca-nocomp) re-introduces the
//     distributed incremental view maintenance anomaly;
//   * COLLECT batching — removing it (eca-nocollect) keeps convergence but
//     exposes intermediate states that correspond to no source state.
//
// The table reports how often each variant reaches each correctness level
// under adversarial (worst-case) interleavings, and what the compensation
// machinery costs in query terms and bytes.
#include <benchmark/benchmark.h>

#include <iostream>

#include "harness.h"
#include "common/strings.h"

namespace wvm::bench {
namespace {

struct AblationRow {
  int64_t runs = 0;
  int64_t convergent = 0;
  int64_t consistent_runs = 0;  // strongly consistent
  int64_t terms = 0;
  int64_t bytes = 0;
};

AblationRow Sweep(Algorithm algorithm, int seeds) {
  AblationRow row;
  for (int seed = 1; seed <= seeds; ++seed) {
    CaseConfig config;
    config.algorithm = algorithm;
    config.cardinality = 30;
    config.join_factor = 3;
    config.k = 10;
    config.stream = Stream::kMixed;
    config.order = Order::kWorst;  // maximal concurrency
    config.seed = static_cast<uint64_t>(seed);
    Result<CaseResult> r = RunCase(config);
    if (!r.ok()) {
      std::cerr << AlgorithmName(algorithm) << ": " << r.status() << "\n";
      continue;
    }
    ++row.runs;
    row.convergent += r->convergent ? 1 : 0;
    row.consistent_runs += r->strongly_consistent ? 1 : 0;
    row.terms += r->query_terms;
    row.bytes += r->bytes;
  }
  return row;
}

}  // namespace

void PrintFigure() {
  constexpr int kSeeds = 40;
  PrintTableHeader(
      "ECA ablation under worst-case interleavings (k=10 mixed, 40 seeds)",
      {"variant", "convergent", "strong", "avg terms", "avg B"});
  for (Algorithm algorithm :
       {Algorithm::kEca, Algorithm::kEcaNoCompensation,
        Algorithm::kEcaNoCollect, Algorithm::kBasic}) {
    AblationRow row = Sweep(algorithm, kSeeds);
    if (row.runs == 0) {
      continue;
    }
    auto pct = [&](int64_t n) {
      return wvm::StrCat(Num(100.0 * static_cast<double>(n) / row.runs), "%");
    };
    PrintTableRow({AlgorithmName(algorithm), pct(row.convergent),
                   pct(row.consistent_runs),
                   Num(static_cast<double>(row.terms) / row.runs),
                   Num(static_cast<double>(row.bytes) / row.runs)});
  }
  std::cout << "(compensation buys convergence; COLLECT buys consistency; "
               "the extra terms/bytes are the price)\n";
}

namespace {

void BM_Ablation(benchmark::State& state) {
  const Algorithm algorithm = static_cast<Algorithm>(state.range(0));
  for (auto _ : state) {
    AblationRow row = Sweep(algorithm, 5);
    benchmark::DoNotOptimize(row);
    state.counters["terms"] = static_cast<double>(row.terms);
  }
}
BENCHMARK(BM_Ablation)
    ->ArgNames({"algorithm"})
    ->Arg(static_cast<int>(Algorithm::kEca))
    ->Arg(static_cast<int>(Algorithm::kEcaNoCompensation));

}  // namespace
}  // namespace wvm::bench

int main(int argc, char** argv) {
  wvm::bench::PrintFigure();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
