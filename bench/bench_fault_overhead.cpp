// What the reliable transport costs: protocol overhead (extra messages and
// bytes on the wire, added staleness) as the link degrades. The paper's
// Section 6 cost model prices maintenance under its Section 3 assumption of
// a reliable FIFO channel; this table prices the assumption itself — the
// retransmissions and acks that buy exactly-once FIFO delivery back from a
// lossy WAN, at drop rates from 0 to 0.3, for an eager algorithm (ECA) and
// a periodic one (RV).
//
// Expected picture: at drop 0 the protocol adds acks but no retransmits and
// no staleness; as drops rise, retransmitted messages/bytes grow roughly
// like drop/(1-drop) per frame, visibility lag grows with the timeout, and
// the Section 3.1 verdict stays "strongly consistent" throughout — the
// whole point of the layer.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <iostream>

#include "common/strings.h"
#include "harness.h"

namespace wvm::bench {
namespace {

constexpr double kDropRates[] = {0.0, 0.05, 0.1, 0.2, 0.3};
constexpr int kSeeds = 8;

// Drop rates need two decimals (Num() would collapse 0.05 into 0.1).
std::string DropLabel(double drop) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%.2f", drop);
  return buf;
}

struct OverheadRow {
  int64_t runs = 0;
  int64_t strong = 0;
  int64_t messages = 0;
  int64_t bytes = 0;
  int64_t retransmits = 0;
  int64_t retransmit_bytes = 0;
  int64_t acks = 0;
  int64_t dropped = 0;
  double mean_lag = 0;
};

CaseConfig MakeCase(Algorithm algorithm, double drop, uint64_t seed,
                    bool backoff = true) {
  CaseConfig config;
  config.algorithm = algorithm;
  config.cardinality = 30;
  config.join_factor = 3;
  config.k = 12;
  config.stream = Stream::kMixed;
  config.order = Order::kRandom;
  config.rv_period = 4;
  config.seed = seed;
  config.fault.enabled = true;
  config.fault.reliable = true;
  config.fault.drop_rate = drop;
  config.fault.duplicate_rate = drop / 2;  // lossy links corrupt both ways
  config.fault.reorder_rate = drop;
  config.fault.max_delay_ticks = 2;
  config.fault.retransmit_timeout_ticks = 6;
  config.fault.retransmit_backoff = backoff;
  config.fault.seed = seed * 977 + 13;
  return config;
}

OverheadRow RunRow(Algorithm algorithm, double drop, bool backoff = true) {
  OverheadRow row;
  for (int seed = 1; seed <= kSeeds; ++seed) {
    Result<CaseResult> r = RunCase(
        MakeCase(algorithm, drop, static_cast<uint64_t>(seed), backoff));
    if (!r.ok()) {
      std::cerr << AlgorithmName(algorithm) << " drop=" << drop << ": "
                << r.status() << "\n";
      continue;
    }
    ++row.runs;
    row.strong += r->strongly_consistent ? 1 : 0;
    row.messages += r->messages;
    row.bytes += r->bytes;
    row.retransmits += r->retransmitted_messages;
    row.retransmit_bytes += r->retransmitted_bytes;
    row.acks += r->ack_messages;
    row.dropped += r->frames_dropped;
    row.mean_lag += r->staleness_mean_lag;
  }
  return row;
}

}  // namespace

void PrintFigure(JsonReport* json) {
  for (Algorithm algorithm : {Algorithm::kEca, Algorithm::kRv}) {
    PrintTableHeader(
        StrCat("Reliable-transport overhead vs drop rate — ",
               AlgorithmName(algorithm),
               " (k=12 mixed updates, C=30, avg of 8 fault schedules)"),
        {"drop", "strong%", "avg M", "avg B", "retransmits", "retx bytes",
         "acks", "dropped", "mean lag"});
    for (double drop : kDropRates) {
      OverheadRow row = RunRow(algorithm, drop);
      if (row.runs == 0) {
        continue;
      }
      const double n = static_cast<double>(row.runs);
      PrintTableRow({DropLabel(drop),
                     Num(100.0 * static_cast<double>(row.strong) / n),
                     Num(static_cast<double>(row.messages) / n),
                     Num(static_cast<double>(row.bytes) / n),
                     Num(static_cast<double>(row.retransmits) / n),
                     Num(static_cast<double>(row.retransmit_bytes) / n),
                     Num(static_cast<double>(row.acks) / n),
                     Num(static_cast<double>(row.dropped) / n),
                     Num(row.mean_lag / n)});
      json->Begin(StrCat("fault_overhead/", AlgorithmName(algorithm),
                         "/drop=", DropLabel(drop)));
      json->Metric("drop_rate", drop);
      json->Metric("runs", row.runs);
      json->Metric("strong_pct",
                   100.0 * static_cast<double>(row.strong) / n);
      json->Metric("avg_messages", static_cast<double>(row.messages) / n);
      json->Metric("avg_bytes", static_cast<double>(row.bytes) / n);
      json->Metric("avg_retransmits",
                   static_cast<double>(row.retransmits) / n);
      json->Metric("avg_retransmit_bytes",
                   static_cast<double>(row.retransmit_bytes) / n);
      json->Metric("avg_acks", static_cast<double>(row.acks) / n);
      json->Metric("avg_frames_dropped",
                   static_cast<double>(row.dropped) / n);
      json->Metric("mean_staleness_lag", row.mean_lag / n);
    }
  }
  std::cout << "(retransmits and acks ride outside the paper's M/B "
               "accounting so the Section 6\n figures stay comparable; "
               "'mean lag' is the visibility lag of consistency/staleness.h "
               "—\n the price of waiting out retransmission timeouts)\n";

  // Retransmission amplification with and without exponential backoff. A
  // fixed timeout re-sends every unacked frame each interval, so at high
  // drop rates the wire fills with copies of the same stuck frames;
  // doubling the timeout per fruitless expiry (capped, reset on ack
  // progress) collapses that amplification without giving up liveness.
  PrintTableHeader(
      "Retransmission amplification — fixed timeout vs exponential backoff "
      "(ECA, k=12 mixed updates, C=30, avg of 8 fault schedules)",
      {"drop", "mode", "strong%", "retransmits", "retx bytes", "mean lag"});
  for (double drop : {0.3, 0.5, 0.7}) {
    double fixed_retx = 0;
    for (bool backoff : {false, true}) {
      OverheadRow row = RunRow(Algorithm::kEca, drop, backoff);
      if (row.runs == 0) {
        continue;
      }
      const double n = static_cast<double>(row.runs);
      const double retx = static_cast<double>(row.retransmits) / n;
      if (!backoff) {
        fixed_retx = retx;
      }
      PrintTableRow({DropLabel(drop), backoff ? "backoff" : "fixed",
                     Num(100.0 * static_cast<double>(row.strong) / n),
                     Num(retx),
                     Num(static_cast<double>(row.retransmit_bytes) / n),
                     Num(row.mean_lag / n)});
      json->Begin(StrCat("fault_backoff/drop=", DropLabel(drop), "/",
                         backoff ? "backoff" : "fixed"));
      json->Metric("drop_rate", drop);
      json->Metric("avg_retransmits", retx);
      json->Metric("avg_retransmit_bytes",
                   static_cast<double>(row.retransmit_bytes) / n);
      json->Metric("strong_pct",
                   100.0 * static_cast<double>(row.strong) / n);
      json->Metric("mean_staleness_lag", row.mean_lag / n);
      if (backoff && fixed_retx > 0) {
        json->Metric("retransmit_reduction", fixed_retx - retx);
      }
    }
  }
  std::cout << "(backoff trades a little extra lag for far fewer duplicate "
               "frames on a congested link)\n";
}

namespace {

void BM_FaultOverhead(benchmark::State& state) {
  const double drop =
      static_cast<double>(state.range(0)) / 100.0;
  for (auto _ : state) {
    OverheadRow row = RunRow(Algorithm::kEca, drop);
    benchmark::DoNotOptimize(row);
    state.counters["retransmits"] =
        static_cast<double>(row.retransmits) / static_cast<double>(row.runs);
  }
}
BENCHMARK(BM_FaultOverhead)
    ->ArgNames({"drop_pct"})
    ->Arg(0)
    ->Arg(10)
    ->Arg(30);

}  // namespace
}  // namespace wvm::bench

int main(int argc, char** argv) {
  wvm::bench::JsonReport json;
  wvm::bench::PrintFigure(&json);
  json.WriteFileFromEnv();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
