file(REMOVE_RECURSE
  "libwvm_relational.a"
)
