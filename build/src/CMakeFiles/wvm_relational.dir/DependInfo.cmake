
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/relational/algebra.cc" "src/CMakeFiles/wvm_relational.dir/relational/algebra.cc.o" "gcc" "src/CMakeFiles/wvm_relational.dir/relational/algebra.cc.o.d"
  "/root/repo/src/relational/predicate.cc" "src/CMakeFiles/wvm_relational.dir/relational/predicate.cc.o" "gcc" "src/CMakeFiles/wvm_relational.dir/relational/predicate.cc.o.d"
  "/root/repo/src/relational/relation.cc" "src/CMakeFiles/wvm_relational.dir/relational/relation.cc.o" "gcc" "src/CMakeFiles/wvm_relational.dir/relational/relation.cc.o.d"
  "/root/repo/src/relational/schema.cc" "src/CMakeFiles/wvm_relational.dir/relational/schema.cc.o" "gcc" "src/CMakeFiles/wvm_relational.dir/relational/schema.cc.o.d"
  "/root/repo/src/relational/tuple.cc" "src/CMakeFiles/wvm_relational.dir/relational/tuple.cc.o" "gcc" "src/CMakeFiles/wvm_relational.dir/relational/tuple.cc.o.d"
  "/root/repo/src/relational/update.cc" "src/CMakeFiles/wvm_relational.dir/relational/update.cc.o" "gcc" "src/CMakeFiles/wvm_relational.dir/relational/update.cc.o.d"
  "/root/repo/src/relational/value.cc" "src/CMakeFiles/wvm_relational.dir/relational/value.cc.o" "gcc" "src/CMakeFiles/wvm_relational.dir/relational/value.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/wvm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
