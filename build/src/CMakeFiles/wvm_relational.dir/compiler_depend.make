# Empty compiler generated dependencies file for wvm_relational.
# This may be replaced when dependencies are built.
