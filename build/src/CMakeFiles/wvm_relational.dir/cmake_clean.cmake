file(REMOVE_RECURSE
  "CMakeFiles/wvm_relational.dir/relational/algebra.cc.o"
  "CMakeFiles/wvm_relational.dir/relational/algebra.cc.o.d"
  "CMakeFiles/wvm_relational.dir/relational/predicate.cc.o"
  "CMakeFiles/wvm_relational.dir/relational/predicate.cc.o.d"
  "CMakeFiles/wvm_relational.dir/relational/relation.cc.o"
  "CMakeFiles/wvm_relational.dir/relational/relation.cc.o.d"
  "CMakeFiles/wvm_relational.dir/relational/schema.cc.o"
  "CMakeFiles/wvm_relational.dir/relational/schema.cc.o.d"
  "CMakeFiles/wvm_relational.dir/relational/tuple.cc.o"
  "CMakeFiles/wvm_relational.dir/relational/tuple.cc.o.d"
  "CMakeFiles/wvm_relational.dir/relational/update.cc.o"
  "CMakeFiles/wvm_relational.dir/relational/update.cc.o.d"
  "CMakeFiles/wvm_relational.dir/relational/value.cc.o"
  "CMakeFiles/wvm_relational.dir/relational/value.cc.o.d"
  "libwvm_relational.a"
  "libwvm_relational.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wvm_relational.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
