file(REMOVE_RECURSE
  "libwvm_script.a"
)
