file(REMOVE_RECURSE
  "CMakeFiles/wvm_script.dir/script/scenario_parser.cc.o"
  "CMakeFiles/wvm_script.dir/script/scenario_parser.cc.o.d"
  "CMakeFiles/wvm_script.dir/script/scenario_runner.cc.o"
  "CMakeFiles/wvm_script.dir/script/scenario_runner.cc.o.d"
  "libwvm_script.a"
  "libwvm_script.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wvm_script.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
