# Empty dependencies file for wvm_script.
# This may be replaced when dependencies are built.
