# Empty compiler generated dependencies file for wvm_multisource.
# This may be replaced when dependencies are built.
