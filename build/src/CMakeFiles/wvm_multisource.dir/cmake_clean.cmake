file(REMOVE_RECURSE
  "CMakeFiles/wvm_multisource.dir/multisource/ms_eca.cc.o"
  "CMakeFiles/wvm_multisource.dir/multisource/ms_eca.cc.o.d"
  "CMakeFiles/wvm_multisource.dir/multisource/ms_eca_snapshot.cc.o"
  "CMakeFiles/wvm_multisource.dir/multisource/ms_eca_snapshot.cc.o.d"
  "CMakeFiles/wvm_multisource.dir/multisource/ms_maintainer.cc.o"
  "CMakeFiles/wvm_multisource.dir/multisource/ms_maintainer.cc.o.d"
  "CMakeFiles/wvm_multisource.dir/multisource/ms_sc.cc.o"
  "CMakeFiles/wvm_multisource.dir/multisource/ms_sc.cc.o.d"
  "CMakeFiles/wvm_multisource.dir/multisource/ms_simulation.cc.o"
  "CMakeFiles/wvm_multisource.dir/multisource/ms_simulation.cc.o.d"
  "libwvm_multisource.a"
  "libwvm_multisource.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wvm_multisource.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
