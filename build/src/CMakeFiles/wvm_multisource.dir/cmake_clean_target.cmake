file(REMOVE_RECURSE
  "libwvm_multisource.a"
)
