
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/multisource/ms_eca.cc" "src/CMakeFiles/wvm_multisource.dir/multisource/ms_eca.cc.o" "gcc" "src/CMakeFiles/wvm_multisource.dir/multisource/ms_eca.cc.o.d"
  "/root/repo/src/multisource/ms_eca_snapshot.cc" "src/CMakeFiles/wvm_multisource.dir/multisource/ms_eca_snapshot.cc.o" "gcc" "src/CMakeFiles/wvm_multisource.dir/multisource/ms_eca_snapshot.cc.o.d"
  "/root/repo/src/multisource/ms_maintainer.cc" "src/CMakeFiles/wvm_multisource.dir/multisource/ms_maintainer.cc.o" "gcc" "src/CMakeFiles/wvm_multisource.dir/multisource/ms_maintainer.cc.o.d"
  "/root/repo/src/multisource/ms_sc.cc" "src/CMakeFiles/wvm_multisource.dir/multisource/ms_sc.cc.o" "gcc" "src/CMakeFiles/wvm_multisource.dir/multisource/ms_sc.cc.o.d"
  "/root/repo/src/multisource/ms_simulation.cc" "src/CMakeFiles/wvm_multisource.dir/multisource/ms_simulation.cc.o" "gcc" "src/CMakeFiles/wvm_multisource.dir/multisource/ms_simulation.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/wvm_query.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/wvm_channel.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/wvm_consistency.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/wvm_relational.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/wvm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
