file(REMOVE_RECURSE
  "CMakeFiles/wvm_channel.dir/channel/channel.cc.o"
  "CMakeFiles/wvm_channel.dir/channel/channel.cc.o.d"
  "CMakeFiles/wvm_channel.dir/channel/cost_meter.cc.o"
  "CMakeFiles/wvm_channel.dir/channel/cost_meter.cc.o.d"
  "CMakeFiles/wvm_channel.dir/channel/message.cc.o"
  "CMakeFiles/wvm_channel.dir/channel/message.cc.o.d"
  "libwvm_channel.a"
  "libwvm_channel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wvm_channel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
