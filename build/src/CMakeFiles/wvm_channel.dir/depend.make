# Empty dependencies file for wvm_channel.
# This may be replaced when dependencies are built.
