
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/channel/channel.cc" "src/CMakeFiles/wvm_channel.dir/channel/channel.cc.o" "gcc" "src/CMakeFiles/wvm_channel.dir/channel/channel.cc.o.d"
  "/root/repo/src/channel/cost_meter.cc" "src/CMakeFiles/wvm_channel.dir/channel/cost_meter.cc.o" "gcc" "src/CMakeFiles/wvm_channel.dir/channel/cost_meter.cc.o.d"
  "/root/repo/src/channel/message.cc" "src/CMakeFiles/wvm_channel.dir/channel/message.cc.o" "gcc" "src/CMakeFiles/wvm_channel.dir/channel/message.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/wvm_query.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/wvm_relational.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/wvm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
