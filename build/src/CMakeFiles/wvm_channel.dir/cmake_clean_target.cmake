file(REMOVE_RECURSE
  "libwvm_channel.a"
)
