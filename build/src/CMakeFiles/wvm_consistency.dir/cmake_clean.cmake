file(REMOVE_RECURSE
  "CMakeFiles/wvm_consistency.dir/consistency/checker.cc.o"
  "CMakeFiles/wvm_consistency.dir/consistency/checker.cc.o.d"
  "CMakeFiles/wvm_consistency.dir/consistency/staleness.cc.o"
  "CMakeFiles/wvm_consistency.dir/consistency/staleness.cc.o.d"
  "CMakeFiles/wvm_consistency.dir/consistency/state_log.cc.o"
  "CMakeFiles/wvm_consistency.dir/consistency/state_log.cc.o.d"
  "libwvm_consistency.a"
  "libwvm_consistency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wvm_consistency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
