file(REMOVE_RECURSE
  "libwvm_consistency.a"
)
