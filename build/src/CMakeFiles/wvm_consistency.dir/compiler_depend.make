# Empty compiler generated dependencies file for wvm_consistency.
# This may be replaced when dependencies are built.
