file(REMOVE_RECURSE
  "libwvm_sim.a"
)
