file(REMOVE_RECURSE
  "CMakeFiles/wvm_sim.dir/sim/policies.cc.o"
  "CMakeFiles/wvm_sim.dir/sim/policies.cc.o.d"
  "CMakeFiles/wvm_sim.dir/sim/simulation.cc.o"
  "CMakeFiles/wvm_sim.dir/sim/simulation.cc.o.d"
  "CMakeFiles/wvm_sim.dir/sim/threaded_runner.cc.o"
  "CMakeFiles/wvm_sim.dir/sim/threaded_runner.cc.o.d"
  "CMakeFiles/wvm_sim.dir/sim/trace.cc.o"
  "CMakeFiles/wvm_sim.dir/sim/trace.cc.o.d"
  "libwvm_sim.a"
  "libwvm_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wvm_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
