# Empty dependencies file for wvm_sim.
# This may be replaced when dependencies are built.
