file(REMOVE_RECURSE
  "CMakeFiles/wvm_query.dir/query/catalog.cc.o"
  "CMakeFiles/wvm_query.dir/query/catalog.cc.o.d"
  "CMakeFiles/wvm_query.dir/query/composite_view.cc.o"
  "CMakeFiles/wvm_query.dir/query/composite_view.cc.o.d"
  "CMakeFiles/wvm_query.dir/query/evaluator.cc.o"
  "CMakeFiles/wvm_query.dir/query/evaluator.cc.o.d"
  "CMakeFiles/wvm_query.dir/query/query.cc.o"
  "CMakeFiles/wvm_query.dir/query/query.cc.o.d"
  "CMakeFiles/wvm_query.dir/query/term.cc.o"
  "CMakeFiles/wvm_query.dir/query/term.cc.o.d"
  "CMakeFiles/wvm_query.dir/query/view_def.cc.o"
  "CMakeFiles/wvm_query.dir/query/view_def.cc.o.d"
  "libwvm_query.a"
  "libwvm_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wvm_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
