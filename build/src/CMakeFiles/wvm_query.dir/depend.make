# Empty dependencies file for wvm_query.
# This may be replaced when dependencies are built.
