
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/query/catalog.cc" "src/CMakeFiles/wvm_query.dir/query/catalog.cc.o" "gcc" "src/CMakeFiles/wvm_query.dir/query/catalog.cc.o.d"
  "/root/repo/src/query/composite_view.cc" "src/CMakeFiles/wvm_query.dir/query/composite_view.cc.o" "gcc" "src/CMakeFiles/wvm_query.dir/query/composite_view.cc.o.d"
  "/root/repo/src/query/evaluator.cc" "src/CMakeFiles/wvm_query.dir/query/evaluator.cc.o" "gcc" "src/CMakeFiles/wvm_query.dir/query/evaluator.cc.o.d"
  "/root/repo/src/query/query.cc" "src/CMakeFiles/wvm_query.dir/query/query.cc.o" "gcc" "src/CMakeFiles/wvm_query.dir/query/query.cc.o.d"
  "/root/repo/src/query/term.cc" "src/CMakeFiles/wvm_query.dir/query/term.cc.o" "gcc" "src/CMakeFiles/wvm_query.dir/query/term.cc.o.d"
  "/root/repo/src/query/view_def.cc" "src/CMakeFiles/wvm_query.dir/query/view_def.cc.o" "gcc" "src/CMakeFiles/wvm_query.dir/query/view_def.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/wvm_relational.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/wvm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
