file(REMOVE_RECURSE
  "libwvm_query.a"
)
