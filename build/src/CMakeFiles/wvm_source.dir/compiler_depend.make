# Empty compiler generated dependencies file for wvm_source.
# This may be replaced when dependencies are built.
