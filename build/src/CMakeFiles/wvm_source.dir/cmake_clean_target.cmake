file(REMOVE_RECURSE
  "libwvm_source.a"
)
