file(REMOVE_RECURSE
  "CMakeFiles/wvm_source.dir/source/physical_evaluator.cc.o"
  "CMakeFiles/wvm_source.dir/source/physical_evaluator.cc.o.d"
  "CMakeFiles/wvm_source.dir/source/source.cc.o"
  "CMakeFiles/wvm_source.dir/source/source.cc.o.d"
  "libwvm_source.a"
  "libwvm_source.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wvm_source.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
