file(REMOVE_RECURSE
  "libwvm_workload.a"
)
