# Empty dependencies file for wvm_workload.
# This may be replaced when dependencies are built.
