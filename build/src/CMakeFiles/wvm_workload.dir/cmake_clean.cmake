file(REMOVE_RECURSE
  "CMakeFiles/wvm_workload.dir/workload/generator.cc.o"
  "CMakeFiles/wvm_workload.dir/workload/generator.cc.o.d"
  "CMakeFiles/wvm_workload.dir/workload/scenarios.cc.o"
  "CMakeFiles/wvm_workload.dir/workload/scenarios.cc.o.d"
  "libwvm_workload.a"
  "libwvm_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wvm_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
