
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analytic/advisor.cc" "src/CMakeFiles/wvm_analytic.dir/analytic/advisor.cc.o" "gcc" "src/CMakeFiles/wvm_analytic.dir/analytic/advisor.cc.o.d"
  "/root/repo/src/analytic/cost_model.cc" "src/CMakeFiles/wvm_analytic.dir/analytic/cost_model.cc.o" "gcc" "src/CMakeFiles/wvm_analytic.dir/analytic/cost_model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/wvm_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/wvm_source.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/wvm_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/wvm_channel.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/wvm_query.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/wvm_relational.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
