file(REMOVE_RECURSE
  "CMakeFiles/wvm_analytic.dir/analytic/advisor.cc.o"
  "CMakeFiles/wvm_analytic.dir/analytic/advisor.cc.o.d"
  "CMakeFiles/wvm_analytic.dir/analytic/cost_model.cc.o"
  "CMakeFiles/wvm_analytic.dir/analytic/cost_model.cc.o.d"
  "libwvm_analytic.a"
  "libwvm_analytic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wvm_analytic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
