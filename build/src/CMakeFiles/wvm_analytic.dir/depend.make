# Empty dependencies file for wvm_analytic.
# This may be replaced when dependencies are built.
