file(REMOVE_RECURSE
  "libwvm_analytic.a"
)
