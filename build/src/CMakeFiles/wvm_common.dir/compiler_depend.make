# Empty compiler generated dependencies file for wvm_common.
# This may be replaced when dependencies are built.
