file(REMOVE_RECURSE
  "CMakeFiles/wvm_common.dir/common/status.cc.o"
  "CMakeFiles/wvm_common.dir/common/status.cc.o.d"
  "CMakeFiles/wvm_common.dir/common/strings.cc.o"
  "CMakeFiles/wvm_common.dir/common/strings.cc.o.d"
  "libwvm_common.a"
  "libwvm_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wvm_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
