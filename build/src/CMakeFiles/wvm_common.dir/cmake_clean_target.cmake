file(REMOVE_RECURSE
  "libwvm_common.a"
)
