
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/basic.cc" "src/CMakeFiles/wvm_core.dir/core/basic.cc.o" "gcc" "src/CMakeFiles/wvm_core.dir/core/basic.cc.o.d"
  "/root/repo/src/core/composite_eca.cc" "src/CMakeFiles/wvm_core.dir/core/composite_eca.cc.o" "gcc" "src/CMakeFiles/wvm_core.dir/core/composite_eca.cc.o.d"
  "/root/repo/src/core/deferred.cc" "src/CMakeFiles/wvm_core.dir/core/deferred.cc.o" "gcc" "src/CMakeFiles/wvm_core.dir/core/deferred.cc.o.d"
  "/root/repo/src/core/eca.cc" "src/CMakeFiles/wvm_core.dir/core/eca.cc.o" "gcc" "src/CMakeFiles/wvm_core.dir/core/eca.cc.o.d"
  "/root/repo/src/core/eca_batch.cc" "src/CMakeFiles/wvm_core.dir/core/eca_batch.cc.o" "gcc" "src/CMakeFiles/wvm_core.dir/core/eca_batch.cc.o.d"
  "/root/repo/src/core/eca_key.cc" "src/CMakeFiles/wvm_core.dir/core/eca_key.cc.o" "gcc" "src/CMakeFiles/wvm_core.dir/core/eca_key.cc.o.d"
  "/root/repo/src/core/eca_local.cc" "src/CMakeFiles/wvm_core.dir/core/eca_local.cc.o" "gcc" "src/CMakeFiles/wvm_core.dir/core/eca_local.cc.o.d"
  "/root/repo/src/core/eca_sc.cc" "src/CMakeFiles/wvm_core.dir/core/eca_sc.cc.o" "gcc" "src/CMakeFiles/wvm_core.dir/core/eca_sc.cc.o.d"
  "/root/repo/src/core/factory.cc" "src/CMakeFiles/wvm_core.dir/core/factory.cc.o" "gcc" "src/CMakeFiles/wvm_core.dir/core/factory.cc.o.d"
  "/root/repo/src/core/lca.cc" "src/CMakeFiles/wvm_core.dir/core/lca.cc.o" "gcc" "src/CMakeFiles/wvm_core.dir/core/lca.cc.o.d"
  "/root/repo/src/core/multi_view.cc" "src/CMakeFiles/wvm_core.dir/core/multi_view.cc.o" "gcc" "src/CMakeFiles/wvm_core.dir/core/multi_view.cc.o.d"
  "/root/repo/src/core/rv.cc" "src/CMakeFiles/wvm_core.dir/core/rv.cc.o" "gcc" "src/CMakeFiles/wvm_core.dir/core/rv.cc.o.d"
  "/root/repo/src/core/sc.cc" "src/CMakeFiles/wvm_core.dir/core/sc.cc.o" "gcc" "src/CMakeFiles/wvm_core.dir/core/sc.cc.o.d"
  "/root/repo/src/core/warehouse.cc" "src/CMakeFiles/wvm_core.dir/core/warehouse.cc.o" "gcc" "src/CMakeFiles/wvm_core.dir/core/warehouse.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/wvm_query.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/wvm_channel.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/wvm_relational.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/wvm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
