file(REMOVE_RECURSE
  "CMakeFiles/wvm_core.dir/core/basic.cc.o"
  "CMakeFiles/wvm_core.dir/core/basic.cc.o.d"
  "CMakeFiles/wvm_core.dir/core/composite_eca.cc.o"
  "CMakeFiles/wvm_core.dir/core/composite_eca.cc.o.d"
  "CMakeFiles/wvm_core.dir/core/deferred.cc.o"
  "CMakeFiles/wvm_core.dir/core/deferred.cc.o.d"
  "CMakeFiles/wvm_core.dir/core/eca.cc.o"
  "CMakeFiles/wvm_core.dir/core/eca.cc.o.d"
  "CMakeFiles/wvm_core.dir/core/eca_batch.cc.o"
  "CMakeFiles/wvm_core.dir/core/eca_batch.cc.o.d"
  "CMakeFiles/wvm_core.dir/core/eca_key.cc.o"
  "CMakeFiles/wvm_core.dir/core/eca_key.cc.o.d"
  "CMakeFiles/wvm_core.dir/core/eca_local.cc.o"
  "CMakeFiles/wvm_core.dir/core/eca_local.cc.o.d"
  "CMakeFiles/wvm_core.dir/core/eca_sc.cc.o"
  "CMakeFiles/wvm_core.dir/core/eca_sc.cc.o.d"
  "CMakeFiles/wvm_core.dir/core/factory.cc.o"
  "CMakeFiles/wvm_core.dir/core/factory.cc.o.d"
  "CMakeFiles/wvm_core.dir/core/lca.cc.o"
  "CMakeFiles/wvm_core.dir/core/lca.cc.o.d"
  "CMakeFiles/wvm_core.dir/core/multi_view.cc.o"
  "CMakeFiles/wvm_core.dir/core/multi_view.cc.o.d"
  "CMakeFiles/wvm_core.dir/core/rv.cc.o"
  "CMakeFiles/wvm_core.dir/core/rv.cc.o.d"
  "CMakeFiles/wvm_core.dir/core/sc.cc.o"
  "CMakeFiles/wvm_core.dir/core/sc.cc.o.d"
  "CMakeFiles/wvm_core.dir/core/warehouse.cc.o"
  "CMakeFiles/wvm_core.dir/core/warehouse.cc.o.d"
  "libwvm_core.a"
  "libwvm_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wvm_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
