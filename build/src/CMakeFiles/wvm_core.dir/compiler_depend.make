# Empty compiler generated dependencies file for wvm_core.
# This may be replaced when dependencies are built.
