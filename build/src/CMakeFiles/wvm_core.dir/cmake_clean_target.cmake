file(REMOVE_RECURSE
  "libwvm_core.a"
)
