
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/io_stats.cc" "src/CMakeFiles/wvm_storage.dir/storage/io_stats.cc.o" "gcc" "src/CMakeFiles/wvm_storage.dir/storage/io_stats.cc.o.d"
  "/root/repo/src/storage/stored_relation.cc" "src/CMakeFiles/wvm_storage.dir/storage/stored_relation.cc.o" "gcc" "src/CMakeFiles/wvm_storage.dir/storage/stored_relation.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/wvm_relational.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/wvm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
