file(REMOVE_RECURSE
  "CMakeFiles/wvm_storage.dir/storage/io_stats.cc.o"
  "CMakeFiles/wvm_storage.dir/storage/io_stats.cc.o.d"
  "CMakeFiles/wvm_storage.dir/storage/stored_relation.cc.o"
  "CMakeFiles/wvm_storage.dir/storage/stored_relation.cc.o.d"
  "libwvm_storage.a"
  "libwvm_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wvm_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
