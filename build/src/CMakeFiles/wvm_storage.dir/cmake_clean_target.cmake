file(REMOVE_RECURSE
  "libwvm_storage.a"
)
