# Empty dependencies file for wvm_storage.
# This may be replaced when dependencies are built.
