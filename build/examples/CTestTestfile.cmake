# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_anomaly_tour "/root/repo/build/examples/anomaly_tour")
set_tests_properties(example_anomaly_tour PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_retail_warehouse "/root/repo/build/examples/retail_warehouse")
set_tests_properties(example_retail_warehouse PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_consistency_audit "/root/repo/build/examples/consistency_audit" "10" "6")
set_tests_properties(example_consistency_audit PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_multi_source "/root/repo/build/examples/multi_source" "10")
set_tests_properties(example_multi_source PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_advisor "/root/repo/build/examples/advisor")
set_tests_properties(example_advisor PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_scenario_anomaly "/root/repo/build/examples/scenario_runner" "/root/repo/examples/scenarios/anomaly.wvm")
set_tests_properties(example_scenario_anomaly PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_scenario_keyed "/root/repo/build/examples/scenario_runner" "/root/repo/examples/scenarios/keyed_deletes.wvm")
set_tests_properties(example_scenario_keyed PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;24;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_scenario_modify "/root/repo/build/examples/scenario_runner" "/root/repo/examples/scenarios/modify_batch.wvm")
set_tests_properties(example_scenario_modify PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;26;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_scenario_replicated "/root/repo/build/examples/scenario_runner" "/root/repo/examples/scenarios/replicated_dimensions.wvm")
set_tests_properties(example_scenario_replicated PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;28;add_test;/root/repo/examples/CMakeLists.txt;0;")
