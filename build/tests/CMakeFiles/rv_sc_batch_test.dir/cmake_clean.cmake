file(REMOVE_RECURSE
  "CMakeFiles/rv_sc_batch_test.dir/rv_sc_batch_test.cc.o"
  "CMakeFiles/rv_sc_batch_test.dir/rv_sc_batch_test.cc.o.d"
  "rv_sc_batch_test"
  "rv_sc_batch_test.pdb"
  "rv_sc_batch_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rv_sc_batch_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
