# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for rv_sc_batch_test.
