# Empty compiler generated dependencies file for rv_sc_batch_test.
# This may be replaced when dependencies are built.
