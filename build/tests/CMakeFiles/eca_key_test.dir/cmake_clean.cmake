file(REMOVE_RECURSE
  "CMakeFiles/eca_key_test.dir/eca_key_test.cc.o"
  "CMakeFiles/eca_key_test.dir/eca_key_test.cc.o.d"
  "eca_key_test"
  "eca_key_test.pdb"
  "eca_key_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eca_key_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
