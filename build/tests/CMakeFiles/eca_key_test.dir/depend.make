# Empty dependencies file for eca_key_test.
# This may be replaced when dependencies are built.
