file(REMOVE_RECURSE
  "CMakeFiles/physical_evaluator_test.dir/physical_evaluator_test.cc.o"
  "CMakeFiles/physical_evaluator_test.dir/physical_evaluator_test.cc.o.d"
  "physical_evaluator_test"
  "physical_evaluator_test.pdb"
  "physical_evaluator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/physical_evaluator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
