# Empty dependencies file for physical_evaluator_test.
# This may be replaced when dependencies are built.
