# Empty compiler generated dependencies file for lca_local_test.
# This may be replaced when dependencies are built.
