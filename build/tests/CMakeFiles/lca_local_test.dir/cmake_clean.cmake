file(REMOVE_RECURSE
  "CMakeFiles/lca_local_test.dir/lca_local_test.cc.o"
  "CMakeFiles/lca_local_test.dir/lca_local_test.cc.o.d"
  "lca_local_test"
  "lca_local_test.pdb"
  "lca_local_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lca_local_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
