# Empty compiler generated dependencies file for caching_test.
# This may be replaced when dependencies are built.
