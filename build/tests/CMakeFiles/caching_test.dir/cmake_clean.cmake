file(REMOVE_RECURSE
  "CMakeFiles/caching_test.dir/caching_test.cc.o"
  "CMakeFiles/caching_test.dir/caching_test.cc.o.d"
  "caching_test"
  "caching_test.pdb"
  "caching_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/caching_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
