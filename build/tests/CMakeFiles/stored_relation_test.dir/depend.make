# Empty dependencies file for stored_relation_test.
# This may be replaced when dependencies are built.
