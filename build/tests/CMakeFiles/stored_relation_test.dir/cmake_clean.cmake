file(REMOVE_RECURSE
  "CMakeFiles/stored_relation_test.dir/stored_relation_test.cc.o"
  "CMakeFiles/stored_relation_test.dir/stored_relation_test.cc.o.d"
  "stored_relation_test"
  "stored_relation_test.pdb"
  "stored_relation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stored_relation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
