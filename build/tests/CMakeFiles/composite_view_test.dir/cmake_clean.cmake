file(REMOVE_RECURSE
  "CMakeFiles/composite_view_test.dir/composite_view_test.cc.o"
  "CMakeFiles/composite_view_test.dir/composite_view_test.cc.o.d"
  "composite_view_test"
  "composite_view_test.pdb"
  "composite_view_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/composite_view_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
