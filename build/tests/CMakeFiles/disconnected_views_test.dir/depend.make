# Empty dependencies file for disconnected_views_test.
# This may be replaced when dependencies are built.
