file(REMOVE_RECURSE
  "CMakeFiles/disconnected_views_test.dir/disconnected_views_test.cc.o"
  "CMakeFiles/disconnected_views_test.dir/disconnected_views_test.cc.o.d"
  "disconnected_views_test"
  "disconnected_views_test.pdb"
  "disconnected_views_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/disconnected_views_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
