# Empty dependencies file for threaded_runner_test.
# This may be replaced when dependencies are built.
