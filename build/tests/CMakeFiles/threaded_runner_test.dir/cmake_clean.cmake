file(REMOVE_RECURSE
  "CMakeFiles/threaded_runner_test.dir/threaded_runner_test.cc.o"
  "CMakeFiles/threaded_runner_test.dir/threaded_runner_test.cc.o.d"
  "threaded_runner_test"
  "threaded_runner_test.pdb"
  "threaded_runner_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/threaded_runner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
