# Empty compiler generated dependencies file for multi_view_deferred_test.
# This may be replaced when dependencies are built.
