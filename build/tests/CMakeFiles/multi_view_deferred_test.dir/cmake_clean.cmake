file(REMOVE_RECURSE
  "CMakeFiles/multi_view_deferred_test.dir/multi_view_deferred_test.cc.o"
  "CMakeFiles/multi_view_deferred_test.dir/multi_view_deferred_test.cc.o.d"
  "multi_view_deferred_test"
  "multi_view_deferred_test.pdb"
  "multi_view_deferred_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_view_deferred_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
