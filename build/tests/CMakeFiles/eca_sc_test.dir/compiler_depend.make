# Empty compiler generated dependencies file for eca_sc_test.
# This may be replaced when dependencies are built.
