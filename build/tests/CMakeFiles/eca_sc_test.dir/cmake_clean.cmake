file(REMOVE_RECURSE
  "CMakeFiles/eca_sc_test.dir/eca_sc_test.cc.o"
  "CMakeFiles/eca_sc_test.dir/eca_sc_test.cc.o.d"
  "eca_sc_test"
  "eca_sc_test.pdb"
  "eca_sc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eca_sc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
