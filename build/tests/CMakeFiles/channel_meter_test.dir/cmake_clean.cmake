file(REMOVE_RECURSE
  "CMakeFiles/channel_meter_test.dir/channel_meter_test.cc.o"
  "CMakeFiles/channel_meter_test.dir/channel_meter_test.cc.o.d"
  "channel_meter_test"
  "channel_meter_test.pdb"
  "channel_meter_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/channel_meter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
