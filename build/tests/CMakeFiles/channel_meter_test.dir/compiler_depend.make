# Empty compiler generated dependencies file for channel_meter_test.
# This may be replaced when dependencies are built.
