file(REMOVE_RECURSE
  "CMakeFiles/multisource_mechanics_test.dir/multisource_mechanics_test.cc.o"
  "CMakeFiles/multisource_mechanics_test.dir/multisource_mechanics_test.cc.o.d"
  "multisource_mechanics_test"
  "multisource_mechanics_test.pdb"
  "multisource_mechanics_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multisource_mechanics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
