# Empty compiler generated dependencies file for multisource_mechanics_test.
# This may be replaced when dependencies are built.
