# Empty compiler generated dependencies file for paper_reproduction_test.
# This may be replaced when dependencies are built.
