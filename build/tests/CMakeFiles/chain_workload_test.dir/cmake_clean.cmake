file(REMOVE_RECURSE
  "CMakeFiles/chain_workload_test.dir/chain_workload_test.cc.o"
  "CMakeFiles/chain_workload_test.dir/chain_workload_test.cc.o.d"
  "chain_workload_test"
  "chain_workload_test.pdb"
  "chain_workload_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chain_workload_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
