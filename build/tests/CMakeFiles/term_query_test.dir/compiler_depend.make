# Empty compiler generated dependencies file for term_query_test.
# This may be replaced when dependencies are built.
