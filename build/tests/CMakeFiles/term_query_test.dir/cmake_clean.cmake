file(REMOVE_RECURSE
  "CMakeFiles/term_query_test.dir/term_query_test.cc.o"
  "CMakeFiles/term_query_test.dir/term_query_test.cc.o.d"
  "term_query_test"
  "term_query_test.pdb"
  "term_query_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/term_query_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
