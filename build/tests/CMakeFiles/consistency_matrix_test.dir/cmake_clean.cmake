file(REMOVE_RECURSE
  "CMakeFiles/consistency_matrix_test.dir/consistency_matrix_test.cc.o"
  "CMakeFiles/consistency_matrix_test.dir/consistency_matrix_test.cc.o.d"
  "consistency_matrix_test"
  "consistency_matrix_test.pdb"
  "consistency_matrix_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/consistency_matrix_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
