# Empty compiler generated dependencies file for consistency_matrix_test.
# This may be replaced when dependencies are built.
