file(REMOVE_RECURSE
  "CMakeFiles/measured_vs_analytic_test.dir/measured_vs_analytic_test.cc.o"
  "CMakeFiles/measured_vs_analytic_test.dir/measured_vs_analytic_test.cc.o.d"
  "measured_vs_analytic_test"
  "measured_vs_analytic_test.pdb"
  "measured_vs_analytic_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/measured_vs_analytic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
