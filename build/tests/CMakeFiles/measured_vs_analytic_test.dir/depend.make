# Empty dependencies file for measured_vs_analytic_test.
# This may be replaced when dependencies are built.
