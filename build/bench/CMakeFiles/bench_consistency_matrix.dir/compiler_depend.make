# Empty compiler generated dependencies file for bench_consistency_matrix.
# This may be replaced when dependencies are built.
