file(REMOVE_RECURSE
  "CMakeFiles/bench_consistency_matrix.dir/bench_consistency_matrix.cpp.o"
  "CMakeFiles/bench_consistency_matrix.dir/bench_consistency_matrix.cpp.o.d"
  "bench_consistency_matrix"
  "bench_consistency_matrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_consistency_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
