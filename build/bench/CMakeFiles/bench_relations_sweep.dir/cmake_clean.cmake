file(REMOVE_RECURSE
  "CMakeFiles/bench_relations_sweep.dir/bench_relations_sweep.cpp.o"
  "CMakeFiles/bench_relations_sweep.dir/bench_relations_sweep.cpp.o.d"
  "bench_relations_sweep"
  "bench_relations_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_relations_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
