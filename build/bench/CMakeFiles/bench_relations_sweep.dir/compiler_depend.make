# Empty compiler generated dependencies file for bench_relations_sweep.
# This may be replaced when dependencies are built.
