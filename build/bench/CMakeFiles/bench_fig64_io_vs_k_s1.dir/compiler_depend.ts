# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for bench_fig64_io_vs_k_s1.
