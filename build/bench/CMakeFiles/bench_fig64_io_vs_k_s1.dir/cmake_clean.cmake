file(REMOVE_RECURSE
  "CMakeFiles/bench_fig64_io_vs_k_s1.dir/bench_fig64_io_vs_k_s1.cpp.o"
  "CMakeFiles/bench_fig64_io_vs_k_s1.dir/bench_fig64_io_vs_k_s1.cpp.o.d"
  "bench_fig64_io_vs_k_s1"
  "bench_fig64_io_vs_k_s1.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig64_io_vs_k_s1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
