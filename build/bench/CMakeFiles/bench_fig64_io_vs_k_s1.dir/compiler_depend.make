# Empty compiler generated dependencies file for bench_fig64_io_vs_k_s1.
# This may be replaced when dependencies are built.
