file(REMOVE_RECURSE
  "CMakeFiles/bench_three_update_case.dir/bench_three_update_case.cpp.o"
  "CMakeFiles/bench_three_update_case.dir/bench_three_update_case.cpp.o.d"
  "bench_three_update_case"
  "bench_three_update_case.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_three_update_case.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
