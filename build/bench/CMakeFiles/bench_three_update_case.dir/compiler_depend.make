# Empty compiler generated dependencies file for bench_three_update_case.
# This may be replaced when dependencies are built.
