file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_compensation.dir/bench_ablation_compensation.cpp.o"
  "CMakeFiles/bench_ablation_compensation.dir/bench_ablation_compensation.cpp.o.d"
  "bench_ablation_compensation"
  "bench_ablation_compensation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_compensation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
