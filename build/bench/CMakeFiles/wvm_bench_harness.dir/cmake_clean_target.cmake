file(REMOVE_RECURSE
  "libwvm_bench_harness.a"
)
