# Empty compiler generated dependencies file for wvm_bench_harness.
# This may be replaced when dependencies are built.
