file(REMOVE_RECURSE
  "CMakeFiles/wvm_bench_harness.dir/harness.cc.o"
  "CMakeFiles/wvm_bench_harness.dir/harness.cc.o.d"
  "libwvm_bench_harness.a"
  "libwvm_bench_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wvm_bench_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
