# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for bench_fig65_io_vs_k_s2.
