file(REMOVE_RECURSE
  "CMakeFiles/bench_fig65_io_vs_k_s2.dir/bench_fig65_io_vs_k_s2.cpp.o"
  "CMakeFiles/bench_fig65_io_vs_k_s2.dir/bench_fig65_io_vs_k_s2.cpp.o.d"
  "bench_fig65_io_vs_k_s2"
  "bench_fig65_io_vs_k_s2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig65_io_vs_k_s2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
