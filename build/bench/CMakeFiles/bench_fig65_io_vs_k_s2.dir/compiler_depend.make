# Empty compiler generated dependencies file for bench_fig65_io_vs_k_s2.
# This may be replaced when dependencies are built.
