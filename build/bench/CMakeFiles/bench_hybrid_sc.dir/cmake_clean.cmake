file(REMOVE_RECURSE
  "CMakeFiles/bench_hybrid_sc.dir/bench_hybrid_sc.cpp.o"
  "CMakeFiles/bench_hybrid_sc.dir/bench_hybrid_sc.cpp.o.d"
  "bench_hybrid_sc"
  "bench_hybrid_sc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_hybrid_sc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
