# Empty dependencies file for bench_hybrid_sc.
# This may be replaced when dependencies are built.
