file(REMOVE_RECURSE
  "CMakeFiles/bench_fig63_bytes_vs_k.dir/bench_fig63_bytes_vs_k.cpp.o"
  "CMakeFiles/bench_fig63_bytes_vs_k.dir/bench_fig63_bytes_vs_k.cpp.o.d"
  "bench_fig63_bytes_vs_k"
  "bench_fig63_bytes_vs_k.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig63_bytes_vs_k.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
