# Empty dependencies file for bench_fig63_bytes_vs_k.
# This may be replaced when dependencies are built.
