# Empty compiler generated dependencies file for bench_fig62_bytes_vs_c.
# This may be replaced when dependencies are built.
