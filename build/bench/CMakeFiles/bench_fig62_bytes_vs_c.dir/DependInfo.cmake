
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig62_bytes_vs_c.cpp" "bench/CMakeFiles/bench_fig62_bytes_vs_c.dir/bench_fig62_bytes_vs_c.cpp.o" "gcc" "bench/CMakeFiles/bench_fig62_bytes_vs_c.dir/bench_fig62_bytes_vs_c.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/wvm_bench_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/wvm_analytic.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/wvm_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/wvm_multisource.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/wvm_script.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/wvm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/wvm_source.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/wvm_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/wvm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/wvm_channel.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/wvm_query.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/wvm_consistency.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/wvm_relational.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/wvm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
