// Consistency audit: empirically certifies the Section 3.1 correctness
// levels of every maintenance strategy by sweeping many seeded random
// interleavings and intersecting the per-run verdicts. This is the
// executable counterpart of the paper's Theorem B.1 / Appendix C claims.
//
//   $ ./consistency_audit [num_seeds] [num_updates]
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "consistency/checker.h"
#include "core/factory.h"
#include "sim/policies.h"
#include "sim/simulation.h"
#include "workload/generator.h"

using namespace wvm;

namespace {

struct Verdicts {
  int runs = 0;
  int convergent = 0;
  int weak = 0;
  int consistent = 0;
  int strong = 0;
  int complete = 0;
};

void Accumulate(const ConsistencyReport& report, Verdicts* v) {
  ++v->runs;
  v->convergent += report.convergent;
  v->weak += report.weakly_consistent;
  v->consistent += report.consistent;
  v->strong += report.strongly_consistent;
  v->complete += report.complete;
}

const char* Mark(int hits, int runs) {
  if (hits == runs) {
    return "always";
  }
  if (hits == 0) {
    return "never";
  }
  return "sometimes";
}

}  // namespace

int main(int argc, char** argv) {
  const int num_seeds = argc > 1 ? std::atoi(argv[1]) : 60;
  const int num_updates = argc > 2 ? std::atoi(argv[2]) : 10;

  std::cout << "auditing " << num_seeds << " random interleavings of "
            << num_updates << " mixed updates per algorithm\n\n";
  std::printf("%-16s%12s%12s%12s%12s%12s\n", "algorithm", "convergent",
              "weak", "consistent", "strong", "complete");

  for (Algorithm algorithm : AllAlgorithms()) {
    Verdicts v;
    for (int seed = 1; seed <= num_seeds; ++seed) {
      Random rng(static_cast<uint64_t>(seed));
      // ECA-Key requires a keyed view; others use the Example 6 chain.
      Result<Workload> workload =
          algorithm == Algorithm::kEcaKey
              ? MakeKeyedWorkload({24, 3}, &rng)
              : MakeExample6Workload({24, 3}, &rng);
      WVM_CHECK_OK(workload.status());
      Result<std::vector<Update>> updates =
          MakeMixedUpdates(*workload, num_updates, 0.35, &rng);
      WVM_CHECK_OK(updates.status());

      // RV with s dividing k so staleness does not mask the comparison;
      // EcaBatch with batches of two.
      Result<std::unique_ptr<ViewMaintainer>> maintainer = MakeMaintainer(
          algorithm, workload->view,
          /*rv_period=*/num_updates % 2 == 0 ? 2 : 1);
      WVM_CHECK_OK(maintainer.status());
      SimulationOptions options;
      options.batch_size = algorithm == Algorithm::kEcaBatch ? 2 : 1;
      Result<std::unique_ptr<Simulation>> sim =
          Simulation::Create(workload->initial, workload->view,
                             std::move(*maintainer), options);
      WVM_CHECK_OK(sim.status());
      (*sim)->SetUpdateScript(*updates);
      RandomPolicy policy(static_cast<uint64_t>(seed) * 7919);
      WVM_CHECK_OK(RunToQuiescence(sim->get(), &policy));
      Accumulate(CheckConsistency((*sim)->state_log()), &v);
    }
    std::printf("%-16s%12s%12s%12s%12s%12s\n", AlgorithmName(algorithm),
                Mark(v.convergent, v.runs), Mark(v.weak, v.runs),
                Mark(v.consistent, v.runs), Mark(v.strong, v.runs),
                Mark(v.complete, v.runs));
  }

  std::cout << "\nExpected: basic and eca-nocomp fail; eca-nocollect is "
               "convergent but inconsistent;\nthe ECA family is always "
               "strongly consistent; lca and sc are always complete.\n";
  return 0;
}
