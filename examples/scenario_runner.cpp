// Runs a warehouse maintenance scenario described in the plain-text format
// of src/script/scenario_parser.h — experiment with algorithms and
// interleavings without writing C++.
//
//   $ ./scenario_runner examples/scenarios/anomaly.wvm
//   $ ./scenario_runner -            # read from stdin
#include <fstream>
#include <iostream>
#include <sstream>

#include "script/scenario_parser.h"
#include "script/scenario_runner.h"

using namespace wvm;

int main(int argc, char** argv) {
  if (argc != 2) {
    std::cerr << "usage: scenario_runner FILE|-\n";
    return 2;
  }
  std::string text;
  if (std::string(argv[1]) == "-") {
    std::ostringstream buffer;
    buffer << std::cin.rdbuf();
    text = buffer.str();
  } else {
    std::ifstream in(argv[1]);
    if (!in) {
      std::cerr << "cannot open " << argv[1] << "\n";
      return 2;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    text = buffer.str();
  }

  Result<ScenarioSpec> spec = ParseScenario(text);
  if (!spec.ok()) {
    std::cerr << "parse error: " << spec.status() << "\n";
    return 2;
  }
  std::cout << "view:      " << spec->view->ToString() << "\n";
  std::cout << "algorithm: " << AlgorithmName(spec->algorithm) << "\n\n";

  Result<ScenarioOutcome> outcome = RunScenario(*spec);
  if (!outcome.ok()) {
    std::cerr << "run error: " << outcome.status() << "\n";
    return 2;
  }
  std::cout << outcome->trace << "\n";
  std::cout << "final warehouse view:     " << outcome->final_view.ToString()
            << "\n";
  std::cout << "view evaluated at source: " << outcome->source_view.ToString()
            << "\n";
  std::cout << "consistency: " << outcome->consistency.ToString() << "\n";
  std::cout << "cost:        " << outcome->cost << "\n";
  if (outcome->expectation_met.has_value()) {
    std::cout << "expectation: "
              << (*outcome->expectation_met ? "MET" : "NOT MET") << "\n";
    return *outcome->expectation_met ? 0 : 1;
  }
  return 0;
}
