// Quickstart: the smallest end-to-end use of the library.
//
// Builds a source with two base relations, defines a warehouse view over
// their natural join, runs the Eager Compensating Algorithm through a
// concurrent update stream, and prints the event trace plus the
// consistency verdict.
//
//   $ ./quickstart
#include <iostream>

#include "consistency/checker.h"
#include "core/factory.h"
#include "sim/policies.h"
#include "sim/simulation.h"

using namespace wvm;

int main() {
  // --- 1. Describe the source data -----------------------------------------
  Schema accounts_schema = Schema::Ints({"acct", "cust"});
  Schema customers_schema = Schema::Ints({"cust", "region"});
  Catalog initial;
  WVM_CHECK_OK(initial.DefineWithData(
      {"accounts", accounts_schema},
      Relation::FromTuples(accounts_schema, {Tuple::Ints({100, 1}),
                                             Tuple::Ints({101, 2})})));
  WVM_CHECK_OK(initial.DefineWithData(
      {"customers", customers_schema},
      Relation::FromTuples(customers_schema, {Tuple::Ints({1, 7}),
                                              Tuple::Ints({2, 8})})));

  // --- 2. Define the warehouse view -----------------------------------------
  // V = pi_{acct,region}(accounts |x| customers)
  Result<ViewDefinitionPtr> view = ViewDefinition::NaturalJoin(
      "V",
      {{"accounts", accounts_schema}, {"customers", customers_schema}},
      {"acct", "region"});
  WVM_CHECK_OK(view.status());
  std::cout << "view: " << (*view)->ToString() << "\n";

  // --- 3. Assemble the simulated warehouse system ---------------------------
  SimulationOptions options;
  options.instrument.record_trace = true;
  Result<std::unique_ptr<ViewMaintainer>> eca =
      MakeMaintainer(Algorithm::kEca, *view);
  WVM_CHECK_OK(eca.status());
  Result<std::unique_ptr<Simulation>> sim =
      Simulation::Create(initial, *view, std::move(*eca), options);
  WVM_CHECK_OK(sim.status());

  // --- 4. Concurrent updates at the source ----------------------------------
  (*sim)->SetUpdateScript({
      Update::Insert("accounts", Tuple::Ints({102, 1})),
      Update::Delete("customers", Tuple::Ints({2, 8})),
      Update::Insert("customers", Tuple::Ints({3, 9})),
      Update::Insert("accounts", Tuple::Ints({103, 3})),
  });

  // A random interleaving: updates race the warehouse's queries, which is
  // exactly when the basic algorithm would corrupt the view.
  RandomPolicy policy(/*seed=*/2026);
  WVM_CHECK_OK(RunToQuiescence(sim->get(), &policy));

  // --- 5. Inspect the outcome ------------------------------------------------
  std::cout << "\nevent trace:\n" << (*sim)->trace().ToString();
  std::cout << "final warehouse view: "
            << (*sim)->warehouse_view().ToString() << "\n";
  Result<Relation> at_source = (*sim)->SourceViewNow();
  WVM_CHECK_OK(at_source.status());
  std::cout << "view evaluated at source: " << at_source->ToString() << "\n";

  ConsistencyReport report = CheckConsistency((*sim)->state_log());
  std::cout << "consistency: " << report.ToString() << "\n";
  std::cout << "cost: " << (*sim)->meter().ToString() << "\n";
  return report.strongly_consistent ? 0 : 1;
}
