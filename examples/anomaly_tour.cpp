// A guided tour of the paper's worked examples: replays Examples 1-5 and
// 7-9 with the exact event interleavings from the text, narrating every
// event, and then shows how ECA repairs the two anomalies the basic
// algorithm exhibits.
//
//   $ ./anomaly_tour
#include <iostream>

#include "consistency/checker.h"
#include "core/factory.h"
#include "sim/policies.h"
#include "workload/scenarios.h"

using namespace wvm;

namespace {

// Runs one paper example under `algorithm` with the paper's interleaving
// and prints the trace.
Relation Replay(const PaperExample& ex, const std::string& algorithm) {
  Result<Algorithm> parsed = ParseAlgorithm(algorithm);
  WVM_CHECK_OK(parsed.status());
  Result<std::unique_ptr<ViewMaintainer>> maintainer =
      MakeMaintainer(*parsed, ex.view);
  WVM_CHECK_OK(maintainer.status());
  SimulationOptions options;
  options.instrument.record_trace = true;
  Result<std::unique_ptr<Simulation>> sim =
      Simulation::Create(ex.initial, ex.view, std::move(*maintainer),
                         options);
  WVM_CHECK_OK(sim.status());
  (*sim)->SetUpdateScript(ex.updates);
  ScriptedPolicy policy(ex.actions);
  WVM_CHECK_OK(RunToQuiescence(sim->get(), &policy));

  std::cout << (*sim)->trace().ToString();
  ConsistencyReport report = CheckConsistency((*sim)->state_log());
  std::cout << "  => final view under " << algorithm << ": "
            << (*sim)->warehouse_view().ToString() << "\n";
  std::cout << "  => " << report.ToString() << "\n";
  return (*sim)->warehouse_view();
}

}  // namespace

int main() {
  Result<std::vector<PaperExample>> examples = AllPaperExamples();
  WVM_CHECK_OK(examples.status());

  for (const PaperExample& ex : *examples) {
    std::cout << "\n============================================"
              << "====================\n";
    std::cout << ex.name << " (" << ex.algorithm << ")\n";
    std::cout << ex.description << "\n";
    std::cout << "view: " << ex.view->ToString() << "\n\n";

    Relation final_view = Replay(ex, ex.algorithm);
    const bool anomalous = !(final_view == ex.expected_correct_final);
    if (anomalous) {
      std::cout << "\n  ANOMALY: the correct view would be "
                << ex.expected_correct_final.ToString() << ".\n"
                << "  Replaying the same interleaving under ECA:\n\n";
      Relation repaired = Replay(ex, "eca");
      std::cout << (repaired == ex.expected_correct_final
                        ? "  ECA repaired the anomaly.\n"
                        : "  UNEXPECTED: ECA did not repair it!\n");
    }
  }
  std::cout << "\nTour complete.\n";
  return 0;
}
