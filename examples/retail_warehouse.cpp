// A realistic warehousing scenario in the spirit of the paper's
// introduction: an operational retail system (the legacy source) feeds a
// decision-support warehouse that materializes a revenue view joining
// three base relations. A stream of sales and catalog changes races the
// warehouse's maintenance queries; every maintenance strategy in the
// library is run over the same stream and compared on cost and
// correctness.
//
//   $ ./retail_warehouse [seed]
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "common/strings.h"
#include "consistency/checker.h"
#include "core/factory.h"
#include "core/sc.h"
#include "sim/policies.h"
#include "sim/simulation.h"
#include "workload/generator.h"

using namespace wvm;

namespace {

// sales(sale, sku), items(sku, cat), categories(cat, margin);
// V = pi_{sale,margin}(sigma_{sale > margin}(sales |x| items |x| cats)).
// Structurally this is the paper's Example 6 chain, which is the point:
// the sample scenario models exactly this kind of decision-support join.
Result<Workload> MakeRetailWorkload(Random* rng) {
  WVM_ASSIGN_OR_RETURN(Workload chain,
                       MakeExample6Workload({/*C=*/60, /*J=*/3}, rng));
  // Re-label the chain with the retail schema.
  Workload retail;
  retail.defs = {
      {"sales", Schema::Ints({"sale", "sku"})},
      {"items", Schema::Ints({"sku", "cat"})},
      {"categories", Schema::Ints({"cat", "margin"})},
  };
  const char* from[] = {"r1", "r2", "r3"};
  for (size_t i = 0; i < 3; ++i) {
    WVM_ASSIGN_OR_RETURN(const Relation* data,
                         chain.initial.Get(from[i]));
    Relation relabeled(retail.defs[i].schema);
    for (const auto& [t, c] : data->entries()) {
      relabeled.Insert(t, c);
    }
    WVM_RETURN_IF_ERROR(
        retail.initial.DefineWithData(retail.defs[i], std::move(relabeled)));
  }
  WVM_ASSIGN_OR_RETURN(
      retail.view,
      ViewDefinition::NaturalJoin(
          "revenue", retail.defs, {"sale", "margin"},
          Predicate::AttrCompare("sale", CompareOp::kGt, "margin")));
  retail.scenario1_indexes = {
      {"sales", "sku", true},
      {"items", "sku", true},
      {"categories", "cat", true},
      {"items", "cat", false},
  };
  return retail;
}

}  // namespace

int main(int argc, char** argv) {
  const uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;
  Random rng(seed);
  Result<Workload> workload = MakeRetailWorkload(&rng);
  WVM_CHECK_OK(workload.status());
  Result<std::vector<Update>> updates =
      MakeMixedUpdates(*workload, /*k=*/60, /*delete_fraction=*/0.3, &rng);
  WVM_CHECK_OK(updates.status());

  std::cout << "retail warehouse demo (seed " << seed << ")\n";
  std::cout << "view: " << workload->view->ToString() << "\n";
  std::cout << "stream: 60 mixed sales/catalog updates racing the "
               "maintenance queries\n\n";
  std::printf("%-14s%12s%12s%12s%14s%12s  %s\n", "algorithm", "messages",
              "bytes", "IO", "view tuples", "replica", "verdict");

  for (Algorithm algorithm :
       {Algorithm::kBasic, Algorithm::kEca, Algorithm::kEcaLocal,
        Algorithm::kLca, Algorithm::kRv, Algorithm::kSc}) {
    Result<std::unique_ptr<ViewMaintainer>> maintainer =
        MakeMaintainer(algorithm, workload->view, /*rv_period=*/6);
    WVM_CHECK_OK(maintainer.status());
    const StoreCopies* sc =
        dynamic_cast<const StoreCopies*>(maintainer->get());

    SimulationOptions options;
    options.indexes = workload->scenario1_indexes;
    Result<std::unique_ptr<Simulation>> sim = Simulation::Create(
        workload->initial, workload->view, std::move(*maintainer), options);
    WVM_CHECK_OK(sim.status());
    (*sim)->SetUpdateScript(*updates);
    RandomPolicy policy(seed);
    WVM_CHECK_OK(RunToQuiescence(sim->get(), &policy));

    ConsistencyReport report = CheckConsistency((*sim)->state_log());
    std::string verdict = report.complete              ? "complete"
                          : report.strongly_consistent ? "strongly consistent"
                          : report.convergent          ? "convergent only"
                                                       : "CORRUPTED VIEW";
    std::string replica =
        sc != nullptr ? StrCat(sc->ReplicaTupleCount(), " rows") : "-";
    std::printf("%-14s%12lld%12lld%12lld%14lld%12s  %s\n",
                AlgorithmName(algorithm),
                static_cast<long long>((*sim)->meter().messages()),
                static_cast<long long>((*sim)->meter().bytes_transferred()),
                static_cast<long long>((*sim)->io_stats().page_reads),
                static_cast<long long>(
                    (*sim)->warehouse_view().TotalPositive()),
                replica.c_str(), verdict.c_str());
  }

  std::cout << "\nReading: basic corrupts the view under concurrency; the "
               "ECA family stays correct\nwithout replicating base data "
               "(SC's replica column) or recomputing (RV's bytes).\n";
  return 0;
}
