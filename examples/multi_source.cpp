// The multi-source frontier (Section 7 future work): what happens when a
// single warehouse view spans relations owned by SEVERAL autonomous
// sources, each with its own FIFO channel but no cross-source ordering.
//
// Demonstrates empirically, over seeded random interleavings:
//   * two sources (one unbound relation per query term): the naive
//     ECA transplant stays strongly consistent — each query's answer rides
//     the FIFO of the only source it visits, behind pending notifications;
//   * three sources (terms span two other sources): mixed-state snapshots
//     break even convergence — the anomaly class the authors' follow-up
//     (Strobe) was created for;
//   * store-copies across sources: always convergent with zero queries,
//     but intermediate states mix per-source prefixes, losing consistency.
//
//   $ ./multi_source [seeds]
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "consistency/checker.h"
#include "multisource/ms_eca.h"
#include "multisource/ms_eca_snapshot.h"
#include "multisource/ms_sc.h"
#include "multisource/ms_simulation.h"

using namespace wvm;

namespace {

struct Tally {
  int runs = 0;
  int convergent = 0;
  int weak = 0;
  int strong = 0;
};

const char* Rate(int hits, int runs) {
  static char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%d/%d", hits, runs);
  return buffer;
}

// Two-source setup: A{r1}, B{r2}, V = pi_{W,Y}(r1 |x| r2).
template <typename Maintainer>
Tally RunTwoSource(int seeds) {
  Tally tally;
  for (int seed = 1; seed <= seeds; ++seed) {
    Schema s1 = Schema::Ints({"W", "X"});
    Schema s2 = Schema::Ints({"X", "Y"});
    Catalog a, b;
    WVM_CHECK_OK(a.DefineWithData(
        {"r1", s1}, Relation::FromTuples(s1, {Tuple::Ints({1, 2})})));
    WVM_CHECK_OK(b.DefineWithData(
        {"r2", s2}, Relation::FromTuples(s2, {Tuple::Ints({2, 5})})));
    auto view = *ViewDefinition::NaturalJoin(
        "V", {{"r1", s1}, {"r2", s2}}, {"W", "Y"});
    auto sim = MsSimulation::Create({a, b}, view,
                                    std::make_unique<Maintainer>(view));
    WVM_CHECK_OK(sim.status());
    WVM_CHECK_OK((*sim)->SetUpdateScript(
        0, {Update::Insert("r1", Tuple::Ints({4, 2})),
            Update::Delete("r1", Tuple::Ints({1, 2}))}));
    WVM_CHECK_OK((*sim)->SetUpdateScript(
        1, {Update::Insert("r2", Tuple::Ints({2, 8})),
            Update::Delete("r2", Tuple::Ints({2, 5}))}));
    WVM_CHECK_OK((*sim)->RunRandom(static_cast<uint64_t>(seed)));
    ConsistencyReport report = CheckConsistency((*sim)->state_log());
    ++tally.runs;
    tally.convergent += report.convergent;
    tally.weak += report.weakly_consistent;
    tally.strong += report.strongly_consistent;
  }
  return tally;
}

// Three-source chain: A{r1}, B{r2}, C{r3}, V spans all three.
template <typename Maintainer>
Tally RunThreeSource(int seeds) {
  Tally tally;
  for (int seed = 1; seed <= seeds; ++seed) {
    Schema s1 = Schema::Ints({"W", "X"});
    Schema s2 = Schema::Ints({"X", "Y"});
    Schema s3 = Schema::Ints({"Y", "Z"});
    Catalog a, b, c;
    WVM_CHECK_OK(a.DefineWithData(
        {"r1", s1}, Relation::FromTuples(s1, {Tuple::Ints({1, 2}),
                                              Tuple::Ints({3, 2})})));
    WVM_CHECK_OK(b.DefineWithData(
        {"r2", s2}, Relation::FromTuples(s2, {Tuple::Ints({2, 5})})));
    WVM_CHECK_OK(c.DefineWithData(
        {"r3", s3}, Relation::FromTuples(s3, {Tuple::Ints({5, 7})})));
    auto view = *ViewDefinition::NaturalJoin(
        "V", {{"r1", s1}, {"r2", s2}, {"r3", s3}}, {"W", "Z"});
    auto sim = MsSimulation::Create({a, b, c}, view,
                                    std::make_unique<Maintainer>(view));
    WVM_CHECK_OK(sim.status());
    WVM_CHECK_OK((*sim)->SetUpdateScript(
        0, {Update::Insert("r1", Tuple::Ints({9, 2})),
            Update::Delete("r1", Tuple::Ints({1, 2}))}));
    WVM_CHECK_OK((*sim)->SetUpdateScript(
        1, {Update::Insert("r2", Tuple::Ints({2, 6})),
            Update::Delete("r2", Tuple::Ints({2, 5}))}));
    WVM_CHECK_OK((*sim)->SetUpdateScript(
        2, {Update::Insert("r3", Tuple::Ints({6, 1})),
            Update::Delete("r3", Tuple::Ints({5, 7}))}));
    WVM_CHECK_OK((*sim)->RunRandom(static_cast<uint64_t>(seed)));
    ConsistencyReport report = CheckConsistency((*sim)->state_log());
    ++tally.runs;
    tally.convergent += report.convergent;
    tally.weak += report.weakly_consistent;
    tally.strong += report.strongly_consistent;
  }
  return tally;
}

void Print(const char* label, const Tally& t) {
  std::printf("%-34s%14s", label, Rate(t.convergent, t.runs));
  std::printf("%14s", Rate(t.weak, t.runs));
  std::printf("%14s\n", Rate(t.strong, t.runs));
}

}  // namespace

int main(int argc, char** argv) {
  const int seeds = argc > 1 ? std::atoi(argv[1]) : 60;
  std::cout << "multi-source view maintenance over " << seeds
            << " random interleavings\n\n";
  std::printf("%-34s%14s%14s%14s\n", "configuration", "convergent", "weak",
              "strong");

  Print("ms-eca, 2 sources", RunTwoSource<MsEca>(seeds));
  Print("ms-sc,  2 sources", RunTwoSource<MsSc>(seeds));
  Print("ms-eca, 3 sources (chain view)", RunThreeSource<MsEca>(seeds));
  Print("ms-sc,  3 sources (chain view)", RunThreeSource<MsSc>(seeds));
  Print("ms-eca-snapshot, 3 sources", RunThreeSource<MsEcaSnapshot>(seeds));

  std::cout
      << "\nReading: the naive multi-source ECA survives two-source views "
         "(its per-source answers\ndouble as synchronization barriers) but "
         "breaks — even losing convergence — once a\nquery term mixes "
         "snapshots of two other sources; store-copies always converges "
         "but\nits intermediate states mix per-source prefixes. Both "
         "failures are the anomaly class\nthe paper's Section 7 reserves "
         "for future work (solved later by the Strobe family).\n\n"
         "The constructive fix, within the paper's constraints: because "
         "the warehouse evaluates\nthe fragment snapshots itself, it can "
         "apply each compensation to the very snapshot\nit corrects "
         "(ms-eca-snapshot) — restoring strong consistency for any number "
         "of sources,\nat the unchanged price of whole-relation "
         "shipping.\n";
  return 0;
}
