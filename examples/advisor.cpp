// The ECA-vs-RV advisor as a command-line tool: feed it the Table 1
// parameters of your warehouse and the expected number of updates per
// maintenance window, get the crossover points and a recommendation per
// cost factor — the practical answer to Section 6's "when is it more
// effective to recompute the entire view?".
//
//   $ ./advisor            # Table 1 defaults, sweep over k
//   $ ./advisor C J K k    # e.g. ./advisor 1000 4 20 50
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "analytic/advisor.h"

using namespace wvm;
using namespace wvm::analytic;

int main(int argc, char** argv) {
  Params params;
  int64_t k = -1;
  if (argc >= 4) {
    params.C = std::atof(argv[1]);
    params.J = std::atof(argv[2]);
    params.K = std::atoi(argv[3]);
  }
  if (argc >= 5) {
    k = std::atoll(argv[4]);
  }

  std::cout << "parameters: " << params.ToString() << "\n";
  Crossovers x = ComputeCrossovers(params);
  std::cout << "crossovers (ECA cheaper below, recompute-once RV above):\n";
  std::printf("  bytes:        ECA-best vs RV at k=%.1f, ECA-worst at k=%.1f\n",
              x.bytes_best, x.bytes_worst);
  std::printf("  IO Scenario1: ECA-best vs RV at k=%.1f, ECA-worst at k=%.1f\n",
              x.io_s1_best, x.io_s1_worst);
  std::printf("  IO Scenario2: ECA-best vs RV at k=%.1f, ECA-worst at k=%.1f\n",
              x.io_s2_best, x.io_s2_worst);

  auto print_advice = [&](int64_t window) {
    Advice s1 = Advise(params, window, PhysicalScenario::kIndexedMemory);
    Advice s2 = Advise(params, window, PhysicalScenario::kNestedLoopLimited);
    std::printf("  k=%-6lld bytes->%-24s io(S1)->%-24s io(S2)->%s\n",
                static_cast<long long>(window), ChoiceName(s1.by_bytes),
                ChoiceName(s1.by_io), ChoiceName(s2.by_io));
  };

  std::cout << "\nrecommendations:\n";
  if (k >= 0) {
    print_advice(k);
  } else {
    for (int64_t window : {1, 3, 8, 15, 30, 60, 100, 150, 300}) {
      print_advice(window);
    }
  }
  std::cout << "\n('depends-on-interleaving': between the best/worst "
               "envelopes of Figures 6.3-6.5 —\n the tighter the coupling "
               "between updates and query answering, the better ECA "
               "fares)\n";
  return 0;
}
